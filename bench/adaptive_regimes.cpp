// Adaptive-runtime bench: a contention ramp and a fast-path overhead check.
//
// Part 1 (ramp): N threads run transfer transactions over a bank-account
// array whose hot-set size is changed mid-run (wide -> tiny -> wide).  The
// AdaptiveScheduler must detect the regime shifts from telemetry alone and
// switch policies at least twice (base -> shrink when aborts spike, back to
// base when contention drains).  The window/switch timeline is printed and
// exported as BENCH_adaptive.json.
//
// Part 2 (overhead): the same transfer transaction with per-thread disjoint
// account partitions (zero conflicts), run under the raw base STM (null
// scheduler) and under AdaptiveScheduler sitting in its LOW regime.  The
// adaptive/base throughput ratio bounds the telemetry fast-path cost; the
// acceptance bar is >= 0.95.
//
// Flags:
//   --tiny          CI smoke sizing (short phases, fewer threads)
//   --threads N     worker thread count (default 8)
//   --phase-ms N    milliseconds per ramp phase (default 400)
//   --json PATH     output artifact (default BENCH_adaptive.json)
//   --ramp-only / --overhead-only
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/metrics_export.hpp"
#include "stm/runner.hpp"
#include "stm/swiss.hpp"
#include "txstruct/tvar.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace shrinktm;

namespace {

constexpr std::size_t kAccounts = 1 << 16;
constexpr std::int64_t kInitial = 1000;

struct RampArgs {
  int threads = 8;
  int phase_ms = 400;
  bool tiny = false;
  bool ramp = true;
  bool overhead = true;
  std::string json_path = "BENCH_adaptive.json";
};

/// Transfer between two accounts drawn from the first `span` slots.  A wide
/// span means almost-never-colliding transactions.  A tiny span is the
/// paper's pathological regime; there the transaction additionally yields
/// mid-flight while holding its eager write lock, modelling transactions
/// that outlive their timeslice (the paper's "overloaded" scenario) -- this
/// also produces genuine conflicts on single-core CI boxes, where short
/// transactions never overlap.
void transfer_op(api::ThreadHandle& th, txs::TVar<std::int64_t>* accounts,
                 std::uint64_t span, util::Xoshiro256& rng) {
  const bool long_tx = span < 256;
  const auto from = rng.next_below(span);
  auto to = rng.next_below(span);
  if (to == from) to = (to + 1) % span;
  const auto amount = static_cast<std::int64_t>(rng.next_below(8));
  atomically(th, [&](api::Tx& tx) {
    const auto balance = tx.read(accounts[from]);
    if (balance < amount) return;
    tx.write(accounts[from], balance - amount);
    if (long_tx) std::this_thread::yield();
    tx.write(accounts[to], tx.read(accounts[to]) + amount);
  });
}

int run_ramp(const RampArgs& args) {
  runtime::AdaptiveConfig cfg;
  cfg.window_ms = 5.0;
  cfg.sampler_interval_ms = 2.5;
  cfg.record_starts = true;  // full-schema traces in the JSON artifact
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kAdaptive)
                      .with_adaptive(cfg));
  runtime::AdaptiveScheduler& sched = *rt.adaptive();

  std::vector<txs::TVar<std::int64_t>> accounts(kAccounts);
  for (auto& a : accounts) a.unsafe_write(kInitial);

  // Phase schedule: wide span (LOW) -> tiny span (HIGH) -> wide again.
  const std::vector<std::uint64_t> spans{kAccounts, 12, kAccounts};
  std::atomic<std::uint64_t> span{spans[0]};
  std::atomic<bool> stop{false};
  std::barrier gate(args.threads + 1);

  std::vector<std::thread> workers;
  workers.reserve(args.threads);
  for (int t = 0; t < args.threads; ++t) {
    workers.emplace_back([&, t] {
      api::ThreadHandle th = rt.attach();
      util::Xoshiro256 rng(0xad4f + 31 * static_cast<std::uint64_t>(t));
      gate.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed))
        transfer_op(th, accounts.data(),
                    span.load(std::memory_order_relaxed), rng);
    });
  }

  gate.arrive_and_wait();
  for (std::size_t phase = 0; phase < spans.size(); ++phase) {
    span.store(spans[phase], std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(args.phase_ms));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  sched.quiesce_telemetry();  // workers joined: publish part-full batches
  sched.tick(true);           // close the trailing partial window

  // Transfers must conserve the total.
  {
    const auto total = rt.run([&](api::Tx& tx) {
      std::int64_t sum = 0;
      for (auto& a : accounts) sum += tx.read(a);
      return sum;
    });
    if (total != static_cast<std::int64_t>(kAccounts) * kInitial) {
      std::cerr << "BROKEN INVARIANT: total " << total << "\n";
      return 1;
    }
  }

  std::cout << "== adaptive ramp: " << args.threads << " threads, "
            << spans.size() << " phases x " << args.phase_ms << " ms ==\n";
  util::TextTable t({"window", "ms", "commits", "abort%", "serialized",
                     "regime", "policy"});
  for (const auto& w : sched.recent_windows()) {
    if (w.commits + w.aborts == 0) continue;
    t.row()
        .cell(w.index)
        .cell(w.seconds * 1e3, 1)
        .cell(w.commits)
        .cell(100.0 * w.abort_ratio, 1)
        .cell(w.serializes)
        .cell(runtime::regime_name(w.regime_after))
        .cell(w.policy);
  }
  t.print(std::cout);

  const auto switches = sched.switches();
  std::cout << "\npolicy switches: " << switches.size() << "\n";
  for (const auto& s : switches)
    std::cout << "  window " << s.window_index << " @" << s.at_seconds
              << "s: " << runtime::regime_name(s.from) << " -> "
              << runtime::regime_name(s.to) << " (" << s.policy << ")\n";

  // The artifact pairs the adaptive trace with the Runtime::stats()
  // snapshot (CI asserts every BENCH_*.json carries a non-empty
  // runtime_stats object).
  bench::emit_bench_json(args.json_path,
                         "{\"bench\":\"adaptive_regimes\",\"runtime_stats\":" +
                             rt.stats().to_json() +
                             ",\"adaptive\":" + runtime::to_json(sched) + "}");

  if (switches.size() < 2) {
    std::cerr << "FAIL: expected >= 2 automatic policy switches, saw "
              << switches.size() << "\n";
    return 1;
  }
  std::cout << "ramp OK: " << switches.size() << " automatic switches\n\n";
  return 0;
}

/// Zero-contention committed-tx/s.  Threads work disjoint account slices;
/// each transaction performs eight transfers inside its own slice (16 reads,
/// 16 writes -- a medium transaction, comparable to one rbtree operation),
/// no conflicts.  `sched` may be null (raw base STM).
double partitioned_throughput(int threads, int duration_ms,
                              core::Scheduler* sched,
                              stm::SwissBackend& backend,
                              std::vector<txs::TVar<std::int64_t>>& accounts) {
  const std::uint64_t slice = kAccounts / static_cast<std::uint64_t>(threads);
  std::atomic<bool> stop{false};
  std::barrier gate(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      stm::TxRunner<stm::SwissTx> atomically(backend.tx(t), sched);
      util::Xoshiro256 rng(0xbeef + 17 * static_cast<std::uint64_t>(t));
      const std::uint64_t base_idx = static_cast<std::uint64_t>(t) * slice;
      gate.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        atomically.run([&](stm::SwissTx& tx) {
          for (int k = 0; k < 8; ++k) {
            const auto i = base_idx + rng.next_below(slice);
            auto j = base_idx + rng.next_below(slice);
            if (i == j) j = base_idx + (j - base_idx + 1) % slice;
            const auto amount = static_cast<std::int64_t>(k);
            const auto bal = accounts[i].read(tx);
            accounts[i].write(tx, bal - amount);
            accounts[j].write(tx, accounts[j].read(tx) + amount);
          }
        });
      }
    });
  }
  backend.reset_stats();
  gate.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(backend.aggregate_stats().commits) / secs;
}

int run_overhead(const RampArgs& args) {
  const int duration_ms = args.tiny ? 200 : 500;
  const int runs = args.tiny ? 3 : 5;
  std::cout << "== adaptive fast-path overhead (zero contention, "
            << args.threads << " threads, " << runs << "x" << duration_ms
            << " ms) ==\n";

  // Per repetition, measure an attached NullScheduler (pays the hook virtual
  // dispatch, does nothing) and the AdaptiveScheduler in its LOW regime
  // back-to-back, and score the PAIRED ratio: both halves of a pair share
  // the box state, so co-tenant noise cancels instead of biasing one side.
  // The best pair (quietest measurement window) estimates the fixed per-tx
  // telemetry cost; raw no-hooks throughput is reported for context.
  double best_raw = 0.0, best_null = 0.0, best_adaptive = 0.0;
  double best_ratio = 0.0;
  for (int r = 0; r < runs; ++r) {
    double null_thr = 0.0, adaptive_thr = 0.0;
    {
      stm::SwissBackend backend;
      std::vector<txs::TVar<std::int64_t>> accounts(kAccounts);
      for (auto& a : accounts) a.unsafe_write(kInitial);
      core::NullScheduler null_sched;
      null_thr = partitioned_throughput(args.threads, duration_ms, &null_sched,
                                        backend, accounts);
    }
    {
      stm::SwissBackend backend;
      std::vector<txs::TVar<std::int64_t>> accounts(kAccounts);
      for (auto& a : accounts) a.unsafe_write(kInitial);
      runtime::AdaptiveScheduler sched(backend, {});
      adaptive_thr = partitioned_throughput(args.threads, duration_ms, &sched,
                                            backend, accounts);
      if (sched.regime() != runtime::Regime::kLow) {
        std::cerr << "FAIL: zero-contention run left the LOW regime ("
                  << runtime::regime_name(sched.regime()) << ")\n";
        return 1;
      }
    }
    {
      stm::SwissBackend backend;
      std::vector<txs::TVar<std::int64_t>> accounts(kAccounts);
      for (auto& a : accounts) a.unsafe_write(kInitial);
      best_raw = std::max(
          best_raw, partitioned_throughput(args.threads, duration_ms, nullptr,
                                           backend, accounts));
    }
    best_null = std::max(best_null, null_thr);
    best_adaptive = std::max(best_adaptive, adaptive_thr);
    if (null_thr > 0)
      best_ratio = std::max(best_ratio, adaptive_thr / null_thr);
  }

  std::cout << "raw (no hooks):  " << static_cast<std::uint64_t>(best_raw)
            << " tx/s\n"
            << "null scheduler:  " << static_cast<std::uint64_t>(best_null)
            << " tx/s\n"
            << "adaptive:        " << static_cast<std::uint64_t>(best_adaptive)
            << " tx/s\n"
            << "adaptive/null:   " << best_ratio
            << " (best paired ratio; bar: >= 0.95)\n";
  if (best_ratio < 0.95) {
    std::cerr << "FAIL: adaptive fast-path overhead exceeds 5%\n";
    return 1;
  }
  std::cout << "overhead OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  RampArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--tiny") {
      args.tiny = true;
    } else if (a == "--threads") {
      args.threads = std::stoi(next());
    } else if (a == "--phase-ms") {
      args.phase_ms = std::stoi(next());
    } else if (a == "--json") {
      args.json_path = next();
    } else if (a == "--ramp-only") {
      args.overhead = false;
    } else if (a == "--overhead-only") {
      args.ramp = false;
    } else if (a == "--help" || a == "-h") {
      std::cout << "flags: --tiny --threads N --phase-ms N --json PATH "
                   "--ramp-only --overhead-only\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }
  if (args.tiny) {
    args.threads = std::min(args.threads, 4);
    args.phase_ms = std::min(args.phase_ms, 200);
  }
  // Backends and the adaptive runtime size per-thread state for 128 slots;
  // an unchecked tid would index past them (asserts are compiled out under
  // RelWithDebInfo).
  if (args.threads < 1 || args.threads > 128) {
    std::cerr << "--threads must be in [1, 128]\n";
    return 2;
  }

  int rc = 0;
  if (args.ramp) rc |= run_ramp(args);
  if (args.overhead) rc |= run_overhead(args);
  return rc;
}

// STMBench7 throughput figures, one binary for every backend/waiting
// combination (collapses the old fig5_stmbench7_swiss / fig8_stmbench7_tiny
// / fig9_stmbench7_swiss_busy forks):
//
//   --backend swiss                  Figure 5: SwissTM-style, preemptive
//                                    waiting, base / Pool / Shrink / ATS
//   --backend tiny                   Figure 8: TinySTM-style, busy waiting;
//                                    the base collapses overloaded, Shrink
//                                    rescues it
//   --backend swiss --wait busy      Figure 9 (appendix): SwissTM-style
//                                    with busy waiting
//
// Emits BENCH_fig_stmbench7[_<wait>]_<backend>.json with a "backend" field
// (the wait suffix appears only when --wait overrides the backend's native
// flavour, e.g. BENCH_fig_stmbench7_busy_swiss.json for Figure 9).
#include "bench/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  const core::BackendKind backend = args.backend_or(core::BackendKind::kSwiss);
  const util::WaitPolicy native = core::native_wait_policy(backend);
  const util::WaitPolicy wait = args.wait_or(native);

  const bool swiss = backend == core::BackendKind::kSwiss;
  const bool busy = wait == util::WaitPolicy::kBusy;
  const char* label = swiss ? (busy ? "Figure 9" : "Figure 5")
                            : (busy ? "Figure 8" : "STMBench7 (tiny, preemptive)");
  // Figure 5 compares the full scheduler field; the overload-collapse
  // figures need only base vs Shrink.
  const std::vector<core::SchedulerKind> kinds =
      (swiss && !busy)
          ? std::vector<core::SchedulerKind>{core::SchedulerKind::kNone,
                                             core::SchedulerKind::kPool,
                                             core::SchedulerKind::kShrink,
                                             core::SchedulerKind::kAts}
          : std::vector<core::SchedulerKind>{core::SchedulerKind::kNone,
                                             core::SchedulerKind::kShrink};

  std::string bench_name = "fig_stmbench7";
  if (wait != native)
    bench_name += std::string("_") + core::wait_policy_name(wait);
  BenchReporter rep(bench_name, args, backend);
  sb7_throughput_sweep(args, backend, wait, kinds, label, &rep);
  rep.write();
  return 0;
}

// Figure 5: SwissTM-style throughput on STMBench7 under base / Pool /
// Shrink / ATS with preemptive waiting.
#include "bench/sweeps.hpp"
#include "stm/swiss.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  BenchReporter rep("fig5_stmbench7_swiss", args);
  sb7_throughput_sweep<stm::SwissBackend>(
      args, util::WaitPolicy::kPreemptive,
      {core::SchedulerKind::kNone, core::SchedulerKind::kPool,
       core::SchedulerKind::kShrink, core::SchedulerKind::kAts},
      "Figure 5", &rep);
  rep.write();
  return 0;
}

// Figure 3: accuracy of Shrink's access-set predictions on STMBench7.
//
// Runs STMBench7-mini with Shrink's accuracy instrumentation enabled and
// prints, per workload mix and thread count, the mean per-transaction read-
// and write-prediction accuracy.  The paper reports roughly 70% on average,
// higher for read-dominated mixes.  Default backend is swiss (the paper's
// Figure 3 system); --backend tiny measures the same predictor over eager
// locking.
#include <iostream>

#include "bench/common.hpp"
#include "workloads/stmbench7.hpp"

using namespace shrinktm;
using namespace shrinktm::bench;
using namespace shrinktm::workloads;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv, {2, 4, 8, 16, 24},
                              {2, 3, 4, 6, 8, 10, 12, 16, 20, 24});
  const core::BackendKind backend = args.backend_or(core::BackendKind::kSwiss);
  const util::WaitPolicy wait = args.wait_or_native(backend);
  BenchReporter rep("fig3_prediction", args, backend);

  for (auto mix : {Sb7Mix::kReadDominated, Sb7Mix::kReadWrite,
                   Sb7Mix::kWriteDominated}) {
    std::cout << "== Figure 3: prediction accuracy, STMBench7 "
              << sb7_mix_name(mix) << " (" << core::backend_kind_name(backend)
              << ") ==\n";
    util::TextTable t({"threads", "read-acc %", "retry-read-acc %", "write-acc %",
                       "commits", "aborts"});
    for (int threads : args.threads) {
      double read_acc = 0, write_acc = 0, retry_acc = 0;
      int retry_samples = 0;
      std::uint64_t commits = 0, aborts = 0;
      int samples = 0;
      for (int r = 0; r < args.runs; ++r) {
        api::Runtime rt(api::RuntimeOptions{}
                            .with_backend(backend)
                            .with_scheduler(core::SchedulerKind::kShrink)
                            .with_wait_policy(wait)
                            .with_track_accuracy()
                            .with_seed(args.seed + r));
        Sb7Config wcfg;
        wcfg.mix = mix;
        StmBench7 w(wcfg);
        DriverConfig dcfg;
        dcfg.threads = threads;
        dcfg.duration_ms = args.duration_ms;
        dcfg.seed = args.seed + r;
        const RunResult res = run_workload(rt, w, dcfg);
        rep.add_runtime_stats(rt.stats());
        if (res.read_accuracy >= 0) {
          read_acc += res.read_accuracy;
          write_acc += res.write_accuracy >= 0 ? res.write_accuracy : 0;
          ++samples;
        }
        if (res.retry_read_accuracy >= 0) {
          retry_acc += res.retry_read_accuracy;
          ++retry_samples;
        }
        commits += res.stm.commits;
        aborts += res.stm.aborts;
      }
      t.row()
          .cell(threads)
          .cell(samples ? 100.0 * read_acc / samples : 0.0, 1)
          .cell(retry_samples ? 100.0 * retry_acc / retry_samples : 0.0, 1)
          .cell(samples ? 100.0 * write_acc / samples : 0.0, 1)
          .cell(commits / static_cast<std::uint64_t>(args.runs))
          .cell(aborts / static_cast<std::uint64_t>(args.runs));
      rep.add(sb7_mix_name(mix),
              {{"threads", static_cast<double>(threads)},
               {"read_accuracy", samples ? read_acc / samples : 0.0},
               {"retry_read_accuracy",
                retry_samples ? retry_acc / retry_samples : 0.0},
               {"write_accuracy", samples ? write_acc / samples : 0.0},
               {"commits", static_cast<double>(commits) / args.runs},
               {"aborts", static_cast<double>(aborts) / args.runs}});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  rep.write();
  return 0;
}

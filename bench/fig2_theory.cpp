// Figure 2 + Theorems 1-3: competitive ratios of simulated TM schedulers.
//
// Prints, for growing n:
//   (a) the Serializer chain family  -- Serializer makespan n vs OPT 2,
//   (b) the ATS star family          -- ATS k+n-1 vs OPT k+1,
//   (c) Restart on adversarial release chains -- ratio <= 2 (Theorem 2),
//   (d) Inaccurate on disjoint jobs  -- ratio n (Theorem 3),
// plus a random-instance sweep showing how prediction inaccuracy degrades
// the clairvoyant scheduler.
#include <iostream>
#include <thread>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "sim/scenarios.hpp"
#include "sim/schedulers.hpp"
#include "util/table.hpp"

using namespace shrinktm;
using namespace shrinktm::sim;

namespace {

/// The simulator needs no STM, but every BENCH_*.json artifact carries
/// Runtime::stats() totals; run a short serializer-chain-shaped self-check
/// on the real runtime (two threads hammering one counter under the
/// serializer policy) so the artifact's runtime_stats describes the library
/// the theory section models.
void runtime_self_check(bench::BenchReporter& rep) {
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kSerializer));
  api::TVar<std::int64_t> counter(0);
  auto worker = [&] {
    api::ThreadHandle th = rt.attach();
    for (int i = 0; i < 2000; ++i)
      atomically(th, [&](api::Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  rep.add_runtime_stats(rt.stats());
  if (counter.unsafe_read() != 4000)
    std::cerr << "WARNING: runtime self-check lost increments\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv, {}, {});
  bench::BenchReporter rep("fig2_theory", args);
  std::cout << "== Figure 2(a) / Theorem 1: Serializer lower-bound family ==\n";
  {
    util::TextTable t({"n", "serializer", "opt", "ratio"});
    for (int n : {4, 8, 16, 32, 64, 128}) {
      const Instance inst = make_serializer_chain(n);
      const double ser = simulate_serializer(inst).makespan;
      const double opt = simulate_offline_opt(inst).makespan;
      t.row().cell(n).cell(ser, 0).cell(opt, 0).cell(ser / opt, 1);
      rep.add("serializer-chain", {{"n", double(n)}, {"ratio", ser / opt}});
    }
    t.print(std::cout);
  }

  std::cout << "\n== Figure 2(b) / Theorem 1: ATS lower-bound family (k=4) ==\n";
  {
    constexpr int k = 4;
    util::TextTable t({"n", "ats", "opt", "ratio", "aborts", "queued"});
    for (int n : {4, 8, 16, 32, 64, 128}) {
      const Instance inst = make_ats_star(n, k);
      const SimResult ats = simulate_ats(inst, k);
      const double opt = simulate_offline_opt(inst).makespan;
      t.row()
          .cell(n)
          .cell(ats.makespan, 0)
          .cell(opt, 0)
          .cell(ats.makespan / opt, 1)
          .cell(ats.aborts)
          .cell(ats.serializations);
      rep.add("ats-star", {{"n", double(n)}, {"ratio", ats.makespan / opt}});
    }
    t.print(std::cout);
  }

  std::cout << "\n== Theorem 2: Restart is 2-competitive (release chains) ==\n";
  {
    util::TextTable t({"n", "restart", "opt", "ratio"});
    for (int n : {4, 8, 16, 32, 64}) {
      const Instance inst = make_release_chain(n);
      const double rs = simulate_restart(inst).makespan;
      const double opt = simulate_offline_opt(inst).makespan;
      t.row().cell(n).cell(rs, 0).cell(opt, 0).cell(rs / opt, 2);
      rep.add("restart-chain", {{"n", double(n)}, {"ratio", rs / opt}});
    }
    t.print(std::cout);
  }

  std::cout << "\n== Theorem 3: Inaccurate prediction on disjoint jobs ==\n";
  {
    util::TextTable t({"n", "accurate", "inaccurate", "opt", "ratio"});
    for (int n : {4, 8, 16, 32, 64}) {
      const Instance inst = make_disjoint(n);
      const double acc = simulate_inaccurate(inst, inst.conflicts).makespan;
      const double inac =
          simulate_inaccurate(inst, make_thm3_predicted(n)).makespan;
      const double opt = simulate_offline_opt(inst).makespan;
      t.row().cell(n).cell(acc, 0).cell(inac, 0).cell(opt, 0).cell(inac / opt, 1);
      rep.add("inaccurate-disjoint", {{"n", double(n)}, {"ratio", inac / opt}});
    }
    t.print(std::cout);
  }

  std::cout << "\n== Prediction-inaccuracy sensitivity (random instances, n=32) ==\n";
  {
    util::TextTable t({"false-conflict p", "restart-with-noise", "opt", "ratio"});
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
      double noisy = 0, opt = 0;
      constexpr int kSeeds = 8;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Instance inst = make_random(32, 0.05, 3, 0, seed);
        noisy += simulate_inaccurate(
                     inst, add_false_conflicts(inst.conflicts, q, seed + 99))
                     .makespan;
        opt += simulate_offline_opt(inst).makespan;
      }
      t.row().cell(q, 2).cell(noisy / kSeeds, 1).cell(opt / kSeeds, 1)
          .cell(noisy / opt, 2);
      rep.add("noise-sensitivity", {{"p", q}, {"ratio", noisy / opt}});
    }
    t.print(std::cout);
  }
  runtime_self_check(rep);
  rep.write();
  return 0;
}

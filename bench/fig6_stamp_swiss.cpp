// Figure 6: speedup of Shrink-SwissTM over base SwissTM on STAMP-mini,
// underloaded (<= cores) and overloaded thread counts.
#include "bench/sweeps.hpp"
#include "stm/swiss.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, stamp_quick_grid(), stamp_paper_grid());
  BenchReporter rep("fig6_stamp_swiss", args);
  stamp_speedup_sweep<stm::SwissBackend>(args, util::WaitPolicy::kPreemptive,
                                         "Figure 6", &rep);
  rep.write();
  return 0;
}

// Reusable sweep drivers behind the figure benches.  Figures 5/8/9, 6/10
// and 7/11 share their shape and differ only in backend, waiting policy and
// scheduler set -- all of which are now RuntimeOptions knobs, so the sweeps
// are plain functions over core::BackendKind instead of templates over
// backend types (one binary serves both backends via --backend).
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "workloads/driver.hpp"
#include "workloads/rbtree_bench.hpp"
#include "workloads/stamp/registry.hpp"
#include "workloads/stmbench7.hpp"

namespace shrinktm::bench {

inline api::RuntimeOptions sweep_options(core::BackendKind backend,
                                         core::SchedulerKind kind,
                                         util::WaitPolicy wait,
                                         std::uint64_t seed) {
  return api::RuntimeOptions{}
      .with_backend(backend)
      .with_scheduler(kind)
      .with_wait_policy(wait)
      .with_seed(seed);
}

/// STMBench7 throughput sweep: one table per workload mix, one column per
/// scheduler, one row per thread count.  Figures 5, 8 and 9.  Each cell is
/// also recorded as a reporter point ("<mix>/<scheduler>" series).
inline void sb7_throughput_sweep(const BenchArgs& args,
                                 core::BackendKind backend,
                                 util::WaitPolicy wait,
                                 const std::vector<core::SchedulerKind>& kinds,
                                 const char* figure_label,
                                 BenchReporter* rep = nullptr) {
  for (auto mix : {workloads::Sb7Mix::kReadDominated, workloads::Sb7Mix::kReadWrite,
                   workloads::Sb7Mix::kWriteDominated}) {
    std::cout << "== " << figure_label << ": STMBench7 "
              << workloads::sb7_mix_name(mix) << " ("
              << core::backend_kind_name(backend) << ", "
              << core::wait_policy_name(wait)
              << " waiting; committed tx/s) ==\n";
    std::vector<std::string> header{"threads"};
    for (auto k : kinds) header.emplace_back(core::scheduler_kind_name(k));
    util::TextTable t(header);
    for (int threads : args.threads) {
      t.row().cell(threads);
      for (auto kind : kinds) {
        const double thr = mean_throughput(args, [&](int run) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(run);
          api::Runtime rt(sweep_options(backend, kind, wait, seed));
          workloads::Sb7Config wcfg;
          wcfg.mix = mix;
          workloads::StmBench7 w(wcfg);
          workloads::DriverConfig dcfg;
          dcfg.threads = threads;
          dcfg.duration_ms = args.duration_ms;
          dcfg.seed = seed;
          const double thr = workloads::run_workload(rt, w, dcfg).throughput;
          if (rep != nullptr) rep->add_runtime_stats(rt.stats());
          return thr;
        });
        t.cell(thr, 0);
        if (rep != nullptr)
          rep->add(std::string(workloads::sb7_mix_name(mix)) + "/" +
                       core::scheduler_kind_name(kind),
                   {{"threads", static_cast<double>(threads)},
                    {"throughput", thr}});
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
}

/// Red-black-tree microbenchmark sweep (Figures 7 and 11).
inline void rbtree_throughput_sweep(const BenchArgs& args,
                                    core::BackendKind backend,
                                    util::WaitPolicy wait,
                                    const std::vector<core::SchedulerKind>& kinds,
                                    const char* figure_label,
                                    BenchReporter* rep = nullptr) {
  for (int update_pct : {20, 70}) {
    std::cout << "== " << figure_label << ": red-black tree, " << update_pct
              << "% updates (" << core::backend_kind_name(backend)
              << "; committed tx/s) ==\n";
    std::vector<std::string> header{"threads"};
    for (auto k : kinds) header.emplace_back(core::scheduler_kind_name(k));
    util::TextTable t(header);
    for (int threads : args.threads) {
      t.row().cell(threads);
      for (auto kind : kinds) {
        const double thr = mean_throughput(args, [&](int run) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(run);
          api::Runtime rt(sweep_options(backend, kind, wait, seed));
          workloads::RBTreeBench w(workloads::RBTreeBenchConfig{
              .key_range = 16384, .update_percent = update_pct});
          workloads::DriverConfig dcfg;
          dcfg.threads = threads;
          dcfg.duration_ms = args.duration_ms;
          dcfg.seed = seed;
          const double thr = workloads::run_workload(rt, w, dcfg).throughput;
          if (rep != nullptr) rep->add_runtime_stats(rt.stats());
          return thr;
        });
        t.cell(thr, 0);
        if (rep != nullptr)
          rep->add("rbtree-" + std::to_string(update_pct) + "pct/" +
                       core::scheduler_kind_name(kind),
                   {{"threads", static_cast<double>(threads)},
                    {"throughput", thr}});
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
}

/// STAMP speedup sweep (Figures 6 and 10): Shrink-X over base X per app and
/// thread count.  Prints throughput pairs and the speedup.
inline void stamp_speedup_sweep(const BenchArgs& args,
                                core::BackendKind backend,
                                util::WaitPolicy wait,
                                const char* figure_label,
                                BenchReporter* rep = nullptr) {
  std::cout << "== " << figure_label << ": STAMP speedup of shrink-"
            << core::backend_kind_name(backend) << " over base "
            << core::backend_kind_name(backend) << " ==\n";
  std::vector<std::string> header{"app"};
  for (int th : args.threads) header.push_back(std::to_string(th) + "thr");
  util::TextTable t(header);
  for (const auto app : workloads::stamp::kAllApps) {
    t.row().cell(workloads::stamp::app_name(app));
    for (int threads : args.threads) {
      auto run_one = [&](core::SchedulerKind kind) {
        return mean_throughput(args, [&](int run) {
          const std::uint64_t seed = args.seed + static_cast<std::uint64_t>(run);
          api::Runtime rt(sweep_options(backend, kind, wait, seed));
          workloads::DriverConfig dcfg;
          dcfg.threads = threads;
          dcfg.duration_ms = args.duration_ms;
          dcfg.seed = seed;
          const double thr =
              workloads::stamp::run_stamp(app, rt, dcfg).throughput;
          if (rep != nullptr) rep->add_runtime_stats(rt.stats());
          return thr;
        });
      };
      const double base = run_one(core::SchedulerKind::kNone);
      const double shrink = run_one(core::SchedulerKind::kShrink);
      t.cell(fmt_speedup(base, shrink));
      if (rep != nullptr)
        rep->add(workloads::stamp::app_name(app),
                 {{"threads", static_cast<double>(threads)},
                  {"base_throughput", base},
                  {"shrink_throughput", shrink},
                  {"speedup", base > 0 ? shrink / base : 0.0}});
    }
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace shrinktm::bench

// Figure 8: TinySTM-style throughput on STMBench7 (busy waiting): the base
// system collapses when overloaded; Shrink rescues it.
#include "bench/sweeps.hpp"
#include "stm/tiny.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  BenchReporter rep("fig8_stmbench7_tiny", args);
  sb7_throughput_sweep<stm::TinyBackend>(
      args, util::WaitPolicy::kBusy,
      {core::SchedulerKind::kNone, core::SchedulerKind::kShrink},
      "Figure 8", &rep);
  rep.write();
  return 0;
}

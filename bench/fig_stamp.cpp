// STAMP-mini speedup figures: Shrink-X over base X, one binary for both
// backends (collapses the old fig6_stamp_swiss / fig10_stamp_tiny forks):
//
//   --backend swiss     Figure 6: SwissTM-style, preemptive waiting,
//                       underloaded and overloaded thread counts
//   --backend tiny      Figure 10 (appendix): TinySTM-style, busy waiting;
//                       the base collapses on intruder/vacation/yada when
//                       overloaded, so speedups get very large
//
// Emits BENCH_fig_stamp_<backend>.json with a "backend" field.
#include "bench/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, stamp_quick_grid(), stamp_paper_grid());
  const core::BackendKind backend = args.backend_or(core::BackendKind::kSwiss);
  const util::WaitPolicy wait = args.wait_or_native(backend);
  const char* label =
      backend == core::BackendKind::kSwiss ? "Figure 6" : "Figure 10";

  BenchReporter rep("fig_stamp", args, backend);
  stamp_speedup_sweep(args, backend, wait, label, &rep);
  rep.write();
  return 0;
}

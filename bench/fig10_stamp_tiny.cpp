// Figure 10 (appendix): speedup of Shrink-TinySTM over base TinySTM on
// STAMP-mini.  The base collapses on intruder/vacation/yada when
// overloaded, so speedups get very large.
#include "bench/sweeps.hpp"
#include "stm/tiny.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, stamp_quick_grid(), stamp_paper_grid());
  BenchReporter rep("fig10_stamp_tiny", args);
  stamp_speedup_sweep<stm::TinyBackend>(args, util::WaitPolicy::kBusy,
                                        "Figure 10", &rep);
  rep.write();
  return 0;
}

// Server-shaped macro-workload: the open-loop KV/ledger service bench.
//
// Not a figure from the paper -- the workload its schedulers were built
// for: heavy open-loop traffic (per-class Poisson/uniform arrivals, due
// times fixed in advance so coordinated omission is measured, not hidden)
// from N client threads over a millions-of-accounts ledger, through three
// phases:
//
//   read-mostly -- zipfian point reads dominate; light transfer traffic
//   write-burst -- transfers and batches slam a handful of hot accounts:
//                  the contrived contention spike that drives the adaptive
//                  classifier to PATHOLOGICAL
//   long-scan   -- metronome (uniform-arrival) range scans over the
//                  cooled-down keyspace
//
// Each cell runs TWICE on a fresh runtime + ledger: admission OFF (the
// baseline: every arrival served, backlog be damned) and admission ON
// (arrivals shed while Runtime::regime() reports pathological).  Both land
// in one BENCH_fig_service_<backend>.json as "<mode>/<phase>/<class>"
// series with per-op-class p50/p99/p999 service AND sojourn latency plus
// shed counts -- the artifact shows what refusing work buys the p999.
//
// The bench exits nonzero if either conservation identity breaks: ledger
// balance (transfers/batches are net-zero) or the runtime's
// attempts == commits + aborts + cancels + retry_waits.
//
// Flags: the common set (bench/common.hpp).  --threads = client-fleet
// sizes; --duration-ms = PER-PHASE duration; --runs is ignored (latency
// percentiles want one long run, not averaged reruns).
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/service.hpp"
#include "service/zipf.hpp"
#include "util/table.hpp"

using namespace shrinktm;

namespace {

service::ServiceSpec make_spec(std::size_t accounts, int clients,
                               std::uint64_t seed, int phase_ms,
                               bool admission) {
  using service::ArrivalKind;
  using service::OpClass;
  service::ServiceSpec spec;
  spec.accounts = accounts;
  spec.clients = clients;
  spec.seed = seed;
  spec.admission = admission;

  auto cls = [](service::PhaseSpec& p, OpClass c, double hz,
                ArrivalKind k = ArrivalKind::kPoisson) {
    p.rate_hz[static_cast<std::size_t>(c)] = hz;
    p.arrival[static_cast<std::size_t>(c)] = k;
  };

  service::PhaseSpec read_mostly;
  read_mostly.name = "read-mostly";
  read_mostly.duration_ms = static_cast<std::uint64_t>(phase_ms);
  read_mostly.theta = 0.8;
  cls(read_mostly, OpClass::kPointRead, 3000);
  cls(read_mostly, OpClass::kTransfer, 400);
  cls(read_mostly, OpClass::kBatch, 50);
  cls(read_mostly, OpClass::kScan, 10, ArrivalKind::kUniform);
  cls(read_mostly, OpClass::kConsume, 200);

  // The burst combines a 2-account hot set with tx_yields: every hot write
  // transaction dwells mid-flight while holding its eager lock, so writers
  // genuinely overlap and the conflict storm shows up as aborts/serializes
  // instead of invisible microsecond spin-waits (the adaptive_regimes.cpp
  // trick).  The offered rate then exceeds what the serialized hot set can
  // absorb, clients run their backlog closed-loop, and the classifier sees
  // the pathological spike admission control exists for.  Scans ride over
  // the hot range (see run_service) and lose validation against the fire.
  service::PhaseSpec write_burst;
  write_burst.name = "write-burst";
  write_burst.duration_ms = static_cast<std::uint64_t>(phase_ms);
  write_burst.theta = 0.95;
  write_burst.hot_keys = 2;  // the whole write load lands on 2 accounts
  write_burst.tx_yields = 1;
  cls(write_burst, OpClass::kPointRead, 500);
  cls(write_burst, OpClass::kTransfer, 12000);
  cls(write_burst, OpClass::kBatch, 1500);
  cls(write_burst, OpClass::kScan, 200, ArrivalKind::kUniform);
  cls(write_burst, OpClass::kConsume, 400);

  service::PhaseSpec long_scan;
  long_scan.name = "long-scan";
  long_scan.duration_ms = static_cast<std::uint64_t>(phase_ms);
  long_scan.theta = 0.6;
  cls(long_scan, OpClass::kPointRead, 1000);
  cls(long_scan, OpClass::kTransfer, 200);
  cls(long_scan, OpClass::kScan, 150, ArrivalKind::kUniform);
  cls(long_scan, OpClass::kConsume, 100);

  spec.phases = {read_mostly, write_burst, long_scan};
  return spec;
}

api::RuntimeOptions make_opts(core::BackendKind backend, std::size_t accounts,
                              std::uint64_t seed) {
  api::RuntimeOptions opts;
  opts.with_backend(backend)
      .with_scheduler(core::SchedulerKind::kAdaptive)
      .with_seed(seed);
  // Short windows + fast sampler: the classifier must react inside a
  // 100ms-scale burst.  min_samples and flush_every are lowered so even the
  // admission controller's 1-in-8 half-open probe trickle populates windows
  // -- the de-escalation path out of a shed phase depends on it.
  opts.adaptive.window_ms = 4.0;
  opts.adaptive.sampler_interval_ms = 2.0;
  opts.adaptive.telemetry_flush_every = 1;
  opts.adaptive.thresholds.min_samples = 4;
  if (backend == core::BackendKind::kDurable)
    opts.durable.region_words = accounts;  // ledger occupies offsets [0, n)
  return opts;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv, {8}, {8, 16});
  const core::BackendKind backend = args.backend_or(core::BackendKind::kTiny);
  const std::size_t accounts = args.full ? (std::size_t{1} << 22)
                                         : (std::size_t{1} << 21);
  bench::BenchReporter reporter("fig_service", args, backend);
  bool ok = true;

  for (const int clients : args.threads) {
    for (const bool admission : {false, true}) {
      const char* mode = admission ? "admission-on" : "admission-off";
      api::Runtime rt(make_opts(backend, accounts, args.seed));
      // Durable runs keep the ledger inside the redo-logged region so every
      // transfer pays the group-commit ack it would in production.
      std::unique_ptr<service::Ledger> ledger;
      if (backend == core::BackendKind::kDurable)
        ledger = std::make_unique<service::Ledger>(*rt.durable_region(),
                                                   accounts, 1000);
      else
        ledger = std::make_unique<service::Ledger>(accounts, 1000);

      const service::ServiceSpec spec =
          make_spec(accounts, clients, args.seed, args.duration_ms, admission);
      const service::ServiceReport rep = service::run_service(rt, *ledger, spec);
      const api::RuntimeStats stats = rt.stats();
      reporter.add_runtime_stats(stats);

      std::cout << "\n== " << rt.backend_name() << " / " << mode << " / "
                << clients << " clients ==\n";
      util::TextTable table({"phase", "class", "done", "shed", "p99 svc us",
                             "p50 soj us", "p99 soj us", "p999 soj us"});
      for (std::size_t pi = 0; pi < rep.phases.size(); ++pi) {
        const auto& rows = rep.phases[pi];
        const double phase_s =
            static_cast<double>(spec.phases[pi].duration_ns()) / 1e9;
        for (std::size_t c = 0; c < rows.size(); ++c) {
          const obs::TaggedLatency& r = rows[c];
          if (r.completed == 0 && r.shed == 0) continue;
          reporter.add(
              std::string(mode) + "/" + rep.phase_names[pi] + "/" + rows.tag(c),
              {{"threads", static_cast<double>(clients)},
               {"completed", static_cast<double>(r.completed)},
               {"shed", static_cast<double>(r.shed)},
               {"throughput", static_cast<double>(r.completed) / phase_s},
               {"p50_service_us", us(r.service.value_at_quantile(0.5))},
               {"p99_service_us", us(r.service.value_at_quantile(0.99))},
               {"p999_service_us", us(r.service.value_at_quantile(0.999))},
               {"p50_sojourn_us", us(r.sojourn.value_at_quantile(0.5))},
               {"p99_sojourn_us", us(r.sojourn.value_at_quantile(0.99))},
               {"p999_sojourn_us", us(r.sojourn.value_at_quantile(0.999))},
               {"mean_sojourn_us", r.sojourn.mean() / 1e3}});
          table.row()
              .cell(rep.phase_names[pi])
              .cell(rows.tag(c))
              .cell(r.completed)
              .cell(r.shed)
              .cell(us(r.service.value_at_quantile(0.99)))
              .cell(us(r.sojourn.value_at_quantile(0.5)))
              .cell(us(r.sojourn.value_at_quantile(0.99)))
              .cell(us(r.sojourn.value_at_quantile(0.999)));
        }
      }
      table.print(std::cout);

      const bool conserved = rep.balance_conserved() && stats.conserved();
      reporter.add(std::string(mode) + "/summary",
                   {{"threads", static_cast<double>(clients)},
                    {"total_shed", static_cast<double>(rep.total_shed())},
                    {"backlog_abandoned",
                     static_cast<double>(rep.backlog_abandoned)},
                    {"tokens_dropped", static_cast<double>(rep.tokens_dropped)},
                    {"balance_delta", static_cast<double>(rep.balance_after -
                                                          rep.balance_before)},
                    {"conserved", conserved ? 1.0 : 0.0}});
      std::cout << "abort ratio "
                << static_cast<int>(stats.abort_ratio() * 100)
                << "%, shed " << rep.total_shed() << ", abandoned "
                << rep.backlog_abandoned << ", tokens dropped "
                << rep.tokens_dropped << ", regime at end "
                << rt.regime_name() << ", balance "
                << (rep.balance_conserved() ? "conserved" : "VIOLATED")
                << ", runtime stats "
                << (stats.conserved() ? "conserved" : "VIOLATED") << "\n";
      if (!conserved) ok = false;
    }
  }

  reporter.write();
  if (!ok) {
    std::cerr << "CONSERVATION FAILED\n";
    return 1;
  }
  return 0;
}

// Figure 9 (appendix): SwissTM-style backend with BUSY waiting on
// STMBench7 -- base throughput drops steeply when overloaded, Shrink keeps
// it up.
#include "bench/sweeps.hpp"
#include "stm/swiss.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  BenchReporter rep("fig9_stmbench7_swiss_busy", args);
  sb7_throughput_sweep<stm::SwissBackend>(
      args, util::WaitPolicy::kBusy,
      {core::SchedulerKind::kNone, core::SchedulerKind::kShrink},
      "Figure 9", &rep);
  rep.write();
  return 0;
}

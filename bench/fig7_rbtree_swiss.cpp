// Figure 7: red-black tree microbenchmark on the SwissTM-style backend --
// quantifies Shrink's overhead at low thread counts and ATS's much larger
// overhead.
#include "bench/sweeps.hpp"
#include "stm/swiss.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  BenchReporter rep("fig7_rbtree_swiss", args);
  rbtree_throughput_sweep<stm::SwissBackend>(
      args, util::WaitPolicy::kPreemptive,
      {core::SchedulerKind::kNone, core::SchedulerKind::kShrink,
       core::SchedulerKind::kAts},
      "Figure 7", &rep);
  rep.write();
  return 0;
}

// Changelog-shipping replication bench: leader commit load vs. follower
// apply throughput and end-to-end lag.
//
//   --tiny                  CI smoke: one small cell, ~50 ms
//   --phase leader|follower two-process protocol (see below); default "both"
//   --dir PATH              the shared durable directory for --phase
//   --transport file|tcp|both  how the follower reaches the leader: pread
//                           the shared directory ("file", the original
//                           mode), or tail a replica::ShipServer over
//                           localhost TCP ("tcp").  Default "both" for the
//                           in-process matrix, "file" for --phase.
//
// Default (both-in-one-process) mode, per cell: a durable leader Runtime
// runs N transfer threads plus one probe thread that commits
// steady_clock-now-ns into a region slot; an in-process api::ReplicaRuntime
// follows the same directory with lag_probe_offset on that slot, so the
// follower's lag histogram measures true commit-to-visible latency.  After
// the window the bench barriers on wait_until(leader.commit_ts()) and
// verifies money conservation THROUGH A FOLLOWER TRANSACTION -- the
// replica's prefix-consistent snapshot must balance exactly.
//
// Two-process mode is the CI replica-smoke job: `--phase leader --dir D`
// runs the workload and commits a done marker strictly after every transfer
// record; `--phase follower --dir D` (concurrently or after) tails D until
// the marker is visible, checks conservation, prints CONVERGED.
//
// Artifact: BENCH_fig_replica.json, series "replica" (file transport) and
// "replica_tcp" (TCP transport) with leader tx/s, apply records/s and lag
// p50/p99/p999 -- tools/perf_history.py charts the lag p99 trends.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "replica/ship_server.hpp"
#include "util/table.hpp"

namespace {

using namespace shrinktm;

constexpr std::size_t kAccounts = 256;
constexpr std::int64_t kInitialBalance = 1000;
constexpr std::size_t kProbeSlot = kAccounts;       // leader lag probe
constexpr std::size_t kMarkerSlot = kAccounts + 1;  // two-process done flag

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fund the accounts and zero the marker, one leader transaction each.
void fund(api::Runtime& rt) {
  api::ThreadHandle th = rt.attach();
  for (std::size_t a = 0; a < kAccounts; ++a) {
    auto acct = rt.durable_region()->slot<std::int64_t>(a);
    atomically(th, [&](api::Tx& tx) { tx.write(acct, kInitialBalance); });
  }
  auto marker = rt.durable_region()->slot<std::int64_t>(kMarkerSlot);
  atomically(th, [&](api::Tx& tx) { tx.write(marker, 0); });
  rt.reset_stats();
}

/// Run `threads` transfer workers + 1 probe writer for `duration_ms`.
/// Returns committed transfers.
std::int64_t drive_leader(api::Runtime& rt, int threads, int duration_ms,
                          std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> transfers{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      api::ThreadHandle th = rt.attach();
      std::uint64_t rng =
          seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
      std::int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t from = xorshift(rng) % kAccounts;
        std::size_t to = xorshift(rng) % kAccounts;
        if (to == from) to = (to + 1) % kAccounts;
        auto src = rt.durable_region()->slot<std::int64_t>(from);
        auto dst = rt.durable_region()->slot<std::int64_t>(to);
        atomically(th, [&](api::Tx& tx) {
          tx.write(src, tx.read(src) - 1);
          tx.write(dst, tx.read(dst) + 1);
        });
        ++local;
      }
      transfers.fetch_add(local, std::memory_order_relaxed);
    });
  }
  workers.emplace_back([&] {
    // The probe: each commit carries "now" so the follower can measure
    // commit-to-visible latency end to end.
    api::ThreadHandle th = rt.attach();
    auto probe = rt.durable_region()->slot<std::int64_t>(kProbeSlot);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t now = steady_now_ns();
      atomically(th, [&](api::Tx& tx) { tx.write(probe, now); });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  return transfers.load();
}

std::int64_t follower_sum(api::ReplicaRuntime& follower) {
  api::ReplicaHandle fh = follower.attach();
  return atomically(fh, [&](api::Tx& tx) {
    std::int64_t sum = 0;
    for (std::size_t a = 0; a < kAccounts; ++a)
      sum += tx.read(follower.region().slot<std::int64_t>(a));
    return sum;
  });
}

struct CellResult {
  double leader_tx_s = 0;
  double apply_records_s = 0;
  double lag_p50_us = 0;
  double lag_p99_us = 0;
  double lag_p999_us = 0;
  double rebuilds = 0;
};

CellResult run_cell(const bench::BenchArgs& args, int threads, int run,
                    const std::string& transport, bench::BenchReporter& rep) {
  char tmpl[] = "/tmp/shrinktm_fig_replica_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  const std::string dir = tmpl;
  CellResult r;
  {
    api::Runtime rt(api::RuntimeOptions{}
                        .with_log_dir(dir)
                        .with_seed(args.seed + static_cast<std::uint64_t>(run)));
    fund(rt);

    // In tcp mode the follower never touches the directory: it tails a
    // ShipServer over localhost, exactly as a cross-host follower would.
    std::unique_ptr<replica::ShipServer> ship;
    api::ReplicaOptions ropts;
    if (transport == "tcp") {
      ship = std::make_unique<replica::ShipServer>(
          replica::ShipServer::Config{dir, 0, nullptr});
      ropts.endpoint = ship->endpoint();
    } else {
      ropts.dir = dir;
    }
    ropts.lag_probe_offset = kProbeSlot;
    api::ReplicaRuntime follower(ropts);

    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t transfers = drive_leader(
        rt, threads, args.duration_ms,
        args.seed + static_cast<std::uint64_t>(run * (threads + 1)));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Read-your-writes barrier, then conservation through the follower.
    if (!follower.wait_until(rt.commit_ts(), std::chrono::seconds(30))) {
      std::cerr << "REPLICA BARRIER TIMEOUT: applied_ts="
                << follower.applied_ts() << " ticket=" << rt.commit_ts()
                << "\n";
      std::exit(1);
    }
    const std::int64_t sum = follower_sum(follower);
    if (sum != static_cast<std::int64_t>(kAccounts) * kInitialBalance) {
      std::cerr << "REPLICA CONSERVATION VIOLATION: follower sum " << sum
                << " != " << kAccounts * kInitialBalance << "\n";
      std::exit(1);
    }

    const api::RuntimeStats s = rt.stats();
    if (!s.conserved()) {
      std::cerr << "STATS CONSERVATION VIOLATION\n";
      std::exit(1);
    }
    rep.add_runtime_stats(s);

    const api::ReplicaStats fs = follower.stats();
    if (fs.transport != transport) {
      std::cerr << "TRANSPORT MISMATCH: follower ran \"" << fs.transport
                << "\", cell wanted \"" << transport << "\"\n";
      std::exit(1);
    }
    r.leader_tx_s = static_cast<double>(transfers) / secs;
    r.apply_records_s = static_cast<double>(fs.records) / secs;
    r.lag_p50_us = static_cast<double>(fs.lag_ns.value_at_quantile(0.50)) / 1e3;
    r.lag_p99_us = static_cast<double>(fs.lag_ns.value_at_quantile(0.99)) / 1e3;
    r.lag_p999_us =
        static_cast<double>(fs.lag_ns.value_at_quantile(0.999)) / 1e3;
    r.rebuilds = static_cast<double>(fs.rebuilds);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return r;
}

// ---- two-process protocol (CI replica-smoke) ----

int run_leader_phase(const bench::BenchArgs& args, const std::string& dir,
                     int threads, const std::string& transport) {
  api::Runtime rt(
      api::RuntimeOptions{}.with_log_dir(dir).with_seed(args.seed));

  // In tcp mode the leader also runs the ship server and publishes its
  // ephemeral port through dir/endpoint.txt (tmp+rename so the follower
  // never reads a half-written file) -- the same indirection a reborn
  // leader on a new port would use.
  std::unique_ptr<replica::ShipServer> ship;
  if (transport == "tcp") {
    ship = std::make_unique<replica::ShipServer>(
        replica::ShipServer::Config{dir, 0, nullptr});
    const std::string tmp = dir + "/endpoint.txt.tmp";
    std::ofstream(tmp) << ship->endpoint() << "\n";
    std::filesystem::rename(tmp, dir + "/endpoint.txt");
  }

  fund(rt);
  const std::int64_t transfers =
      drive_leader(rt, threads, args.duration_ms, args.seed);
  // The done marker commits strictly AFTER every transfer record (workers
  // are joined): a follower that sees it has the complete workload.
  api::ThreadHandle th = rt.attach();
  auto marker = rt.durable_region()->slot<std::int64_t>(kMarkerSlot);
  atomically(th, [&](api::Tx& tx) { tx.write(marker, 1); });
  std::cout << "LEADER_DONE transfers=" << transfers
            << " commit_ts=" << rt.commit_ts() << "\n";

  if (ship != nullptr) {
    // A file follower reads the directory after we exit; a TCP follower
    // needs the server alive until it has converged.  Linger until it
    // signals via dir/follower.done (bounded, so CI can't hang).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!std::filesystem::exists(dir + "/follower.done") &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return 0;
}

int run_follower_phase(const std::string& dir, const std::string& transport) {
  api::ReplicaOptions ropts;
  if (transport == "tcp") {
    // Pure network follower: no filesystem access to the leader's data,
    // only the endpoint file naming its live port.
    ropts.endpoint = "@" + dir + "/endpoint.txt";
  } else {
    ropts.dir = dir;
  }
  api::ReplicaRuntime follower(ropts);
  api::ReplicaHandle fh = follower.attach();
  auto marker = follower.region().slot<std::int64_t>(kMarkerSlot);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (atomically(fh, [&](api::Tx& tx) { return tx.read(marker); }) != 1) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "FOLLOWER TIMEOUT waiting for leader done marker "
                << "(applied_ts=" << follower.applied_ts() << ")\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::int64_t sum = [&] {
    return atomically(fh, [&](api::Tx& tx) {
      std::int64_t s = 0;
      for (std::size_t a = 0; a < kAccounts; ++a)
        s += tx.read(follower.region().slot<std::int64_t>(a));
      return s;
    });
  }();
  if (sum != static_cast<std::int64_t>(kAccounts) * kInitialBalance) {
    std::cerr << "FOLLOWER CONSERVATION VIOLATION: sum " << sum << "\n";
    return 1;
  }
  const api::ReplicaStats fs = follower.stats();
  std::cout << "CONVERGED sum=" << sum << " applied_ts=" << fs.applied_ts
            << " records=" << fs.records << " rebuilds=" << fs.rebuilds
            << " transport=" << fs.transport
            << " reconnects=" << fs.reconnects << "\n";
  if (transport == "tcp") std::ofstream(dir + "/follower.done") << "ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;

  // Strip this bench's custom flags before the shared parser (which rejects
  // unknown flags): --tiny, --phase, --dir.
  bool tiny = false;
  std::string phase = "both";
  std::string dir;
  std::string transport;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tiny") {
      tiny = true;
    } else if (a == "--phase" && i + 1 < argc) {
      phase = argv[++i];
    } else if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (a == "--transport" && i + 1 < argc) {
      transport = argv[++i];
    } else {
      filtered.push_back(argv[i]);
    }
  }
  if (transport.empty()) transport = phase == "both" ? "both" : "file";
  if (transport != "file" && transport != "tcp" && transport != "both") {
    std::cerr << "unknown --transport " << transport << " (file|tcp|both)\n";
    return 2;
  }
  if (transport == "both" && phase != "both") {
    std::cerr << "--phase " << phase << " needs --transport file or tcp\n";
    return 2;
  }
  BenchArgs args = parse_args(static_cast<int>(filtered.size()),
                              filtered.data(), {1, 2, 4}, {1, 2, 4, 8, 16});
  if (tiny) {
    args.threads = {2};
    args.duration_ms = 50;
    args.runs = 1;
  }

  if (phase == "leader") {
    if (dir.empty()) {
      std::cerr << "--phase leader requires --dir\n";
      return 2;
    }
    return run_leader_phase(args, dir, args.threads.front(), transport);
  }
  if (phase == "follower") {
    if (dir.empty()) {
      std::cerr << "--phase follower requires --dir\n";
      return 2;
    }
    return run_follower_phase(dir, transport);
  }
  if (phase != "both") {
    std::cerr << "unknown --phase " << phase << " (leader|follower|both)\n";
    return 2;
  }

  BenchReporter rep("fig_replica", args);
  std::cout << "fig_replica: leader commit load vs follower apply throughput "
               "and lag\n";
  std::vector<std::string> transports;
  if (transport == "both") {
    transports = {"file", "tcp"};
  } else {
    transports = {transport};
  }
  util::TextTable t({"transport", "threads", "leader tx/s", "apply rec/s",
                     "lag p50 us", "lag p99 us", "lag p999 us", "rebuilds"});
  for (const std::string& tr : transports) {
    for (const int threads : args.threads) {
      util::OnlineStats thr;
      CellResult last;
      for (int run = 0; run < args.runs; ++run) {
        last = run_cell(args, threads, run, tr, rep);
        thr.add(last.leader_tx_s);
      }
      t.row();
      t.cell(tr);
      t.cell(threads);
      t.cell(thr.mean(), 0);
      t.cell(last.apply_records_s, 0);
      t.cell(last.lag_p50_us, 1);
      t.cell(last.lag_p99_us, 1);
      t.cell(last.lag_p999_us, 1);
      t.cell(last.rebuilds, 0);
      rep.add(tr == "tcp" ? "replica_tcp" : "replica",
              {{"threads", static_cast<double>(threads)},
               {"leader_tx_s", thr.mean()},
               {"apply_records_s", last.apply_records_s},
               {"lag_p50_us", last.lag_p50_us},
               {"lag_p99_us", last.lag_p99_us},
               {"lag_p999_us", last.lag_p999_us},
               {"rebuilds", last.rebuilds}});
    }
  }
  t.print(std::cout);
  rep.write();
  return 0;
}

// Changelog-shipping replication bench: leader commit load vs. follower
// apply throughput and end-to-end lag.
//
//   --tiny                  CI smoke: one small cell, ~50 ms
//   --phase leader|follower two-process protocol (see below); default "both"
//   --dir PATH              the shared durable directory for --phase
//
// Default (both-in-one-process) mode, per cell: a durable leader Runtime
// runs N transfer threads plus one probe thread that commits
// steady_clock-now-ns into a region slot; an in-process api::ReplicaRuntime
// follows the same directory with lag_probe_offset on that slot, so the
// follower's lag histogram measures true commit-to-visible latency.  After
// the window the bench barriers on wait_until(leader.commit_ts()) and
// verifies money conservation THROUGH A FOLLOWER TRANSACTION -- the
// replica's prefix-consistent snapshot must balance exactly.
//
// Two-process mode is the CI replica-smoke job: `--phase leader --dir D`
// runs the workload and commits a done marker strictly after every transfer
// record; `--phase follower --dir D` (concurrently or after) tails D until
// the marker is visible, checks conservation, prints CONVERGED.
//
// Artifact: BENCH_fig_replica.json, series "replica" with leader tx/s,
// apply records/s and lag p50/p99/p999 -- tools/perf_history.py charts the
// lag p99 trend.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "util/table.hpp"

namespace {

using namespace shrinktm;

constexpr std::size_t kAccounts = 256;
constexpr std::int64_t kInitialBalance = 1000;
constexpr std::size_t kProbeSlot = kAccounts;       // leader lag probe
constexpr std::size_t kMarkerSlot = kAccounts + 1;  // two-process done flag

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fund the accounts and zero the marker, one leader transaction each.
void fund(api::Runtime& rt) {
  api::ThreadHandle th = rt.attach();
  for (std::size_t a = 0; a < kAccounts; ++a) {
    auto acct = rt.durable_region()->slot<std::int64_t>(a);
    atomically(th, [&](api::Tx& tx) { tx.write(acct, kInitialBalance); });
  }
  auto marker = rt.durable_region()->slot<std::int64_t>(kMarkerSlot);
  atomically(th, [&](api::Tx& tx) { tx.write(marker, 0); });
  rt.reset_stats();
}

/// Run `threads` transfer workers + 1 probe writer for `duration_ms`.
/// Returns committed transfers.
std::int64_t drive_leader(api::Runtime& rt, int threads, int duration_ms,
                          std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> transfers{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      api::ThreadHandle th = rt.attach();
      std::uint64_t rng =
          seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
      std::int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t from = xorshift(rng) % kAccounts;
        std::size_t to = xorshift(rng) % kAccounts;
        if (to == from) to = (to + 1) % kAccounts;
        auto src = rt.durable_region()->slot<std::int64_t>(from);
        auto dst = rt.durable_region()->slot<std::int64_t>(to);
        atomically(th, [&](api::Tx& tx) {
          tx.write(src, tx.read(src) - 1);
          tx.write(dst, tx.read(dst) + 1);
        });
        ++local;
      }
      transfers.fetch_add(local, std::memory_order_relaxed);
    });
  }
  workers.emplace_back([&] {
    // The probe: each commit carries "now" so the follower can measure
    // commit-to-visible latency end to end.
    api::ThreadHandle th = rt.attach();
    auto probe = rt.durable_region()->slot<std::int64_t>(kProbeSlot);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t now = steady_now_ns();
      atomically(th, [&](api::Tx& tx) { tx.write(probe, now); });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  return transfers.load();
}

std::int64_t follower_sum(api::ReplicaRuntime& follower) {
  api::ReplicaHandle fh = follower.attach();
  return atomically(fh, [&](api::Tx& tx) {
    std::int64_t sum = 0;
    for (std::size_t a = 0; a < kAccounts; ++a)
      sum += tx.read(follower.region().slot<std::int64_t>(a));
    return sum;
  });
}

struct CellResult {
  double leader_tx_s = 0;
  double apply_records_s = 0;
  double lag_p50_us = 0;
  double lag_p99_us = 0;
  double lag_p999_us = 0;
  double rebuilds = 0;
};

CellResult run_cell(const bench::BenchArgs& args, int threads, int run,
                    bench::BenchReporter& rep) {
  char tmpl[] = "/tmp/shrinktm_fig_replica_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  const std::string dir = tmpl;
  CellResult r;
  {
    api::Runtime rt(api::RuntimeOptions{}
                        .with_log_dir(dir)
                        .with_seed(args.seed + static_cast<std::uint64_t>(run)));
    fund(rt);

    api::ReplicaOptions ropts;
    ropts.dir = dir;
    ropts.lag_probe_offset = kProbeSlot;
    api::ReplicaRuntime follower(ropts);

    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t transfers = drive_leader(
        rt, threads, args.duration_ms,
        args.seed + static_cast<std::uint64_t>(run * (threads + 1)));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Read-your-writes barrier, then conservation through the follower.
    if (!follower.wait_until(rt.commit_ts(), std::chrono::seconds(30))) {
      std::cerr << "REPLICA BARRIER TIMEOUT: applied_ts="
                << follower.applied_ts() << " ticket=" << rt.commit_ts()
                << "\n";
      std::exit(1);
    }
    const std::int64_t sum = follower_sum(follower);
    if (sum != static_cast<std::int64_t>(kAccounts) * kInitialBalance) {
      std::cerr << "REPLICA CONSERVATION VIOLATION: follower sum " << sum
                << " != " << kAccounts * kInitialBalance << "\n";
      std::exit(1);
    }

    const api::RuntimeStats s = rt.stats();
    if (!s.conserved()) {
      std::cerr << "STATS CONSERVATION VIOLATION\n";
      std::exit(1);
    }
    rep.add_runtime_stats(s);

    const api::ReplicaStats fs = follower.stats();
    r.leader_tx_s = static_cast<double>(transfers) / secs;
    r.apply_records_s = static_cast<double>(fs.records) / secs;
    r.lag_p50_us = static_cast<double>(fs.lag_ns.value_at_quantile(0.50)) / 1e3;
    r.lag_p99_us = static_cast<double>(fs.lag_ns.value_at_quantile(0.99)) / 1e3;
    r.lag_p999_us =
        static_cast<double>(fs.lag_ns.value_at_quantile(0.999)) / 1e3;
    r.rebuilds = static_cast<double>(fs.rebuilds);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return r;
}

// ---- two-process protocol (CI replica-smoke) ----

int run_leader_phase(const bench::BenchArgs& args, const std::string& dir,
                     int threads) {
  api::Runtime rt(
      api::RuntimeOptions{}.with_log_dir(dir).with_seed(args.seed));
  fund(rt);
  const std::int64_t transfers =
      drive_leader(rt, threads, args.duration_ms, args.seed);
  // The done marker commits strictly AFTER every transfer record (workers
  // are joined): a follower that sees it has the complete workload.
  api::ThreadHandle th = rt.attach();
  auto marker = rt.durable_region()->slot<std::int64_t>(kMarkerSlot);
  atomically(th, [&](api::Tx& tx) { tx.write(marker, 1); });
  std::cout << "LEADER_DONE transfers=" << transfers
            << " commit_ts=" << rt.commit_ts() << "\n";
  return 0;
}

int run_follower_phase(const std::string& dir) {
  api::ReplicaOptions ropts;
  ropts.dir = dir;
  api::ReplicaRuntime follower(ropts);
  api::ReplicaHandle fh = follower.attach();
  auto marker = follower.region().slot<std::int64_t>(kMarkerSlot);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (atomically(fh, [&](api::Tx& tx) { return tx.read(marker); }) != 1) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "FOLLOWER TIMEOUT waiting for leader done marker "
                << "(applied_ts=" << follower.applied_ts() << ")\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::int64_t sum = [&] {
    return atomically(fh, [&](api::Tx& tx) {
      std::int64_t s = 0;
      for (std::size_t a = 0; a < kAccounts; ++a)
        s += tx.read(follower.region().slot<std::int64_t>(a));
      return s;
    });
  }();
  if (sum != static_cast<std::int64_t>(kAccounts) * kInitialBalance) {
    std::cerr << "FOLLOWER CONSERVATION VIOLATION: sum " << sum << "\n";
    return 1;
  }
  const api::ReplicaStats fs = follower.stats();
  std::cout << "CONVERGED sum=" << sum << " applied_ts=" << fs.applied_ts
            << " records=" << fs.records << " rebuilds=" << fs.rebuilds
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;

  // Strip this bench's custom flags before the shared parser (which rejects
  // unknown flags): --tiny, --phase, --dir.
  bool tiny = false;
  std::string phase = "both";
  std::string dir;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tiny") {
      tiny = true;
    } else if (a == "--phase" && i + 1 < argc) {
      phase = argv[++i];
    } else if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      filtered.push_back(argv[i]);
    }
  }
  BenchArgs args = parse_args(static_cast<int>(filtered.size()),
                              filtered.data(), {1, 2, 4}, {1, 2, 4, 8, 16});
  if (tiny) {
    args.threads = {2};
    args.duration_ms = 50;
    args.runs = 1;
  }

  if (phase == "leader") {
    if (dir.empty()) {
      std::cerr << "--phase leader requires --dir\n";
      return 2;
    }
    return run_leader_phase(args, dir, args.threads.front());
  }
  if (phase == "follower") {
    if (dir.empty()) {
      std::cerr << "--phase follower requires --dir\n";
      return 2;
    }
    return run_follower_phase(dir);
  }
  if (phase != "both") {
    std::cerr << "unknown --phase " << phase << " (leader|follower|both)\n";
    return 2;
  }

  BenchReporter rep("fig_replica", args);
  std::cout << "fig_replica: leader commit load vs follower apply throughput "
               "and lag\n";
  util::TextTable t({"threads", "leader tx/s", "apply rec/s", "lag p50 us",
                     "lag p99 us", "lag p999 us", "rebuilds"});
  for (const int threads : args.threads) {
    util::OnlineStats thr;
    CellResult last;
    for (int run = 0; run < args.runs; ++run) {
      last = run_cell(args, threads, run, rep);
      thr.add(last.leader_tx_s);
    }
    t.row();
    t.cell(threads);
    t.cell(thr.mean(), 0);
    t.cell(last.apply_records_s, 0);
    t.cell(last.lag_p50_us, 1);
    t.cell(last.lag_p99_us, 1);
    t.cell(last.lag_p999_us, 1);
    t.cell(last.rebuilds, 0);
    rep.add("replica", {{"threads", static_cast<double>(threads)},
                        {"leader_tx_s", thr.mean()},
                        {"apply_records_s", last.apply_records_s},
                        {"lag_p50_us", last.lag_p50_us},
                        {"lag_p99_us", last.lag_p99_us},
                        {"lag_p999_us", last.lag_p999_us},
                        {"rebuilds", last.rebuilds}});
  }
  t.print(std::cout);
  rep.write();
  return 0;
}

// Durable-backend group-commit bench: random transfers over a persistent
// Region, swept across thread counts and durability sync modes.
//
//   --tiny                 CI smoke: one small cell per mode, ~100 ms total
//   --threads a,b,c        thread counts to sweep
//
// Three series per run (fresh ephemeral log directory per cell):
//   transfer/group   full durability -- every commit blocks until the fsync
//                    covering its redo record (ack latency is measured here);
//   transfer/async   log + fsync in the background, commits never wait;
//   transfer/none    log only, no fsync (the I/O-path upper bound).
//
// The artifact (BENCH_fig_durable.json) carries the group-commit batching
// stats (records per fsync, max batch) and the ack-latency percentiles
// p50/p99/p999 alongside the usual runtime_stats block, so the history
// pipeline can watch both throughput and the durability tax.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "util/table.hpp"

namespace {

using namespace shrinktm;

constexpr std::size_t kAccounts = 256;
constexpr std::int64_t kInitialBalance = 1000;

struct CellResult {
  double throughput = 0;        ///< committed transfers per second
  double ack_p50_us = 0;        ///< group-commit ack latency percentiles
  double ack_p99_us = 0;
  double ack_p999_us = 0;
  double records_per_fsync = 0; ///< batching amortization
  double fsyncs = 0;
  double max_batch = 0;
};

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

CellResult run_cell(const bench::BenchArgs& args, api::SyncMode mode,
                    int threads, int run, bench::BenchReporter& rep) {
  api::DurableOptions dopts;  // empty dir: fresh ephemeral mkdtemp per cell
  dopts.sync = mode;
  api::Runtime rt(api::RuntimeOptions{}
                      .with_durable(dopts)
                      .with_seed(args.seed + static_cast<std::uint64_t>(run)));

  {
    api::ThreadHandle th = rt.attach();
    for (std::size_t a = 0; a < kAccounts; ++a) {
      auto acct = rt.durable_region()->slot<std::int64_t>(a);
      atomically(th, [&](api::Tx& tx) { tx.write(acct, kInitialBalance); });
    }
    rt.reset_stats();  // measure the transfer phase, not the funding
  }

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> transfers{0};
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      api::ThreadHandle th = rt.attach();
      std::uint64_t rng = args.seed + 0x9e3779b97f4a7c15ull *
                                          static_cast<std::uint64_t>(
                                              t + 1 + run * threads);
      std::int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t from = xorshift(rng) % kAccounts;
        std::size_t to = xorshift(rng) % kAccounts;
        if (to == from) to = (to + 1) % kAccounts;
        auto src = rt.durable_region()->slot<std::int64_t>(from);
        auto dst = rt.durable_region()->slot<std::int64_t>(to);
        atomically(th, [&](api::Tx& tx) {
          tx.write(src, tx.read(src) - 1);
          tx.write(dst, tx.read(dst) + 1);
        });
        ++local;
      }
      transfers.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(args.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Money conservation: transfers move units, never create them.
  std::int64_t sum = 0;
  for (std::size_t a = 0; a < kAccounts; ++a)
    sum += rt.durable_region()->slot<std::int64_t>(a).unsafe_read();
  if (sum != static_cast<std::int64_t>(kAccounts) * kInitialBalance) {
    std::cerr << "CONSERVATION VIOLATION: account sum " << sum << " != "
              << kAccounts * kInitialBalance << "\n";
    std::exit(1);
  }

  const api::RuntimeStats s = rt.stats();
  if (!s.conserved()) {
    std::cerr << "STATS CONSERVATION VIOLATION: attempts " << s.attempts
              << " != commits+aborts+cancels+retry_waits\n";
    std::exit(1);
  }
  rep.add_runtime_stats(s);

  CellResult r;
  r.throughput = static_cast<double>(transfers.load()) / secs;
  r.ack_p50_us =
      static_cast<double>(s.durable.ack.value_at_quantile(0.50)) / 1e3;
  r.ack_p99_us =
      static_cast<double>(s.durable.ack.value_at_quantile(0.99)) / 1e3;
  r.ack_p999_us =
      static_cast<double>(s.durable.ack.value_at_quantile(0.999)) / 1e3;
  r.fsyncs = static_cast<double>(s.durable.fsyncs);
  r.records_per_fsync =
      s.durable.fsyncs == 0
          ? 0.0
          : static_cast<double>(s.durable.log_records) /
                static_cast<double>(s.durable.fsyncs);
  r.max_batch = static_cast<double>(s.durable.max_batch_records);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;

  // --tiny is this bench's CI-smoke flag; strip it before the shared parser
  // (which rejects unknown flags).
  bool tiny = false;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--tiny")
      tiny = true;
    else
      filtered.push_back(argv[i]);
  }
  BenchArgs args = parse_args(static_cast<int>(filtered.size()),
                              filtered.data(), {1, 2, 4, 8}, {1, 2, 4, 8, 16, 24});
  if (tiny) {
    args.threads = {2};
    args.duration_ms = 25;
    args.runs = 1;
  }

  BenchReporter rep("fig_durable", args);
  std::cout << "fig_durable: durable transfers/s by sync mode "
               "(group = fsync-acknowledged)\n";
  util::TextTable t({"mode", "threads", "tx/s", "ack p50 us", "ack p99 us",
                     "ack p999 us", "rec/fsync", "max batch"});

  const api::SyncMode kModes[] = {api::SyncMode::kGroupCommit,
                                  api::SyncMode::kAsync, api::SyncMode::kNone};
  for (const api::SyncMode mode : kModes) {
    const std::string name = durable::sync_mode_name(mode);
    for (const int threads : args.threads) {
      util::OnlineStats thr;
      CellResult last;
      for (int run = 0; run < args.runs; ++run) {
        last = run_cell(args, mode, threads, run, rep);
        thr.add(last.throughput);
      }
      t.row();
      t.cell(name);
      t.cell(threads);
      t.cell(thr.mean(), 0);
      t.cell(last.ack_p50_us, 1);
      t.cell(last.ack_p99_us, 1);
      t.cell(last.ack_p999_us, 1);
      t.cell(last.records_per_fsync, 1);
      t.cell(last.max_batch, 0);
      rep.add("transfer/" + name,
              {{"threads", static_cast<double>(threads)},
               {"throughput", thr.mean()},
               {"ack_p50_us", last.ack_p50_us},
               {"ack_p99_us", last.ack_p99_us},
               {"ack_p999_us", last.ack_p999_us},
               {"records_per_fsync", last.records_per_fsync},
               {"fsyncs", last.fsyncs},
               {"max_batch_records", last.max_batch}});
    }
  }
  t.print(std::cout);
  rep.write();
  return 0;
}

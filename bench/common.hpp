// Shared harness for the figure-reproduction benches.
//
// Every fig* binary accepts:
//   --threads 1,2,4,...   thread counts to sweep
//   --duration-ms N       measurement window per data point
//   --runs N              repetitions averaged per data point (paper: 20)
//   --full                use the paper's full thread grid and durations
// and prints its series as an aligned text table -- the textual analogue of
// the paper's plots.
#pragma once

#include <cstdint>
#include <cstring>
#include <ctime>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/stats.hpp"
#include "core/factory.hpp"
#include "runtime/metrics_export.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/driver.hpp"

namespace shrinktm::bench {

struct BenchArgs {
  std::vector<int> threads;
  int duration_ms = 120;
  int runs = 3;  // single-run cells are too noisy on oversubscribed boxes
  bool full = false;
  std::uint64_t seed = 42;
  std::string json_path;  ///< --json override; "" = BENCH_<bench>[_<backend>].json
  /// --backend tiny|swiss|durable for the merged figure benches
  /// ("" = bench default).
  std::string backend;
  /// --wait busy|preemptive ("" = the selected backend's native default).
  std::string wait;

  core::BackendKind backend_or(core::BackendKind dflt) const {
    return backend.empty() ? dflt : core::parse_backend_kind(backend);
  }
  util::WaitPolicy wait_or(util::WaitPolicy dflt) const {
    return wait.empty() ? dflt : core::parse_wait_policy(wait);
  }
  /// --wait, defaulting to the selected backend's native flavour.
  util::WaitPolicy wait_or_native(core::BackendKind backend) const {
    return wait_or(core::native_wait_policy(backend));
  }
};

inline std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

/// Parses common flags.  `quick_threads` is the default sweep;
/// `paper_threads` is selected by --full (the grid from the paper's plots).
inline BenchArgs parse_args(int argc, char** argv, std::vector<int> quick_threads,
                            std::vector<int> paper_threads) {
  BenchArgs args;
  args.threads = std::move(quick_threads);
  bool threads_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--threads") {
      args.threads = parse_int_list(next());
      threads_overridden = true;
    } else if (a == "--duration-ms") {
      args.duration_ms = std::stoi(next());
    } else if (a == "--runs") {
      args.runs = std::stoi(next());
    } else if (a == "--seed") {
      args.seed = std::stoull(next());
    } else if (a == "--full") {
      args.full = true;
    } else if (a == "--json") {
      args.json_path = next();
    } else if (a == "--backend") {
      args.backend = next();
    } else if (a == "--wait") {
      args.wait = next();
    } else if (a == "--help" || a == "-h") {
      std::cout << "flags: --threads a,b,c  --duration-ms N  --runs N  "
                   "--seed N  --full  --json PATH  "
                   "--backend tiny|swiss|durable  --wait busy|preemptive\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << a << "\n";
      std::exit(2);
    }
  }
  if (args.full && !threads_overridden) {
    args.threads = std::move(paper_threads);
    if (args.duration_ms == 120) args.duration_ms = 300;
    if (args.runs == 3) args.runs = 5;
  }
  return args;
}

/// Paper grids.
inline std::vector<int> paper_thread_grid() {
  return {1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24};
}
inline std::vector<int> quick_thread_grid() { return {1, 2, 4, 8, 16, 24}; }
inline std::vector<int> stamp_paper_grid() { return {2, 4, 8, 16, 32, 64}; }
inline std::vector<int> stamp_quick_grid() { return {2, 8, 32}; }

/// Average committed-tx/s of `make_and_run()` over args.runs repetitions.
/// make_and_run must build a FRESH backend+scheduler+workload per call.
template <typename F>
double mean_throughput(const BenchArgs& args, F&& make_and_run) {
  util::OnlineStats s;
  for (int r = 0; r < args.runs; ++r) s.add(make_and_run(r));
  return s.mean();
}

inline std::string fmt_speedup(double base, double variant) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << (base > 0 ? variant / base : 0.0) << "x";
  return os.str();
}

/// Provenance stamped into every BENCH_*.json artifact: which commit
/// produced the numbers, when (UTC), and under which build flags -- the
/// fields tools/perf_history.py keys its history on.  The macros are baked
/// in by CMake (SHRINKTM_GIT_SHA from `git rev-parse` at configure time);
/// builds outside CMake degrade to "unknown".
inline std::string build_stamp_json() {
  std::ostringstream os;
#if defined(SHRINKTM_GIT_SHA)
  os << "{\"commit\":\"" << runtime::json_escape(SHRINKTM_GIT_SHA) << "\"";
#else
  os << "{\"commit\":\"unknown\"";
#endif
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  os << ",\"utc\":\"" << buf << "\",\"build\":{";
#if defined(SHRINKTM_BUILD_NATIVE) && SHRINKTM_BUILD_NATIVE
  os << "\"native\":true";
#else
  os << "\"native\":false";
#endif
#if defined(SHRINKTM_BUILD_LTO) && SHRINKTM_BUILD_LTO
  os << ",\"lto\":true";
#else
  os << ",\"lto\":false";
#endif
  os << "}}";
  return os.str();
}

/// Write a BENCH_*.json artifact (runtime aggregates, sweep results, ...)
/// and note the path on stdout so CI logs link data to runs.  Failures are
/// reported, never fatal.
inline void emit_bench_json(const std::string& path, const std::string& json) {
  if (runtime::write_json_file(path, json))
    std::cout << "wrote " << path << "\n";
  else
    std::cerr << "WARNING: could not write " << path << "\n";
}

/// Shared BENCH_*.json reporter: every bench binary accumulates its sweep
/// results as named series of numeric points and writes one artifact per
/// run, so the perf trajectory is machine-readable from day one (schema
/// follows runtime/metrics_export.hpp: flat JSON, no dependency).
///
///   {"bench":"fig8_stmbench7_tiny","schema_version":1,
///    "args":{"duration_ms":120,"runs":3,"full":false,"seed":42},
///    "series":[{"name":"read-dominated/shrink",
///               "points":[{"threads":2,"throughput":52100.0},...]},...]}
class BenchReporter {
 public:
  BenchReporter(std::string bench, const BenchArgs& args)
      : bench_(std::move(bench)), args_(args) {}

  /// Merged-figure flavour: the artifact carries a `"backend"` field and the
  /// default path becomes BENCH_<bench>_<backend>.json, so one binary run
  /// once per --backend value yields distinct artifacts.
  BenchReporter(std::string bench, const BenchArgs& args,
                core::BackendKind backend)
      : bench_(std::move(bench)), args_(args),
        backend_(core::backend_kind_name(backend)) {}

  using Fields = std::vector<std::pair<std::string, double>>;

  /// Append one point to `series` (created on first use, emitted in first-
  /// use order so the JSON mirrors the printed tables).
  void add(const std::string& series, Fields fields) {
    for (auto& s : series_) {
      if (s.name == series) {
        s.points.push_back(std::move(fields));
        return;
      }
    }
    series_.push_back({series, {std::move(fields)}});
  }

  /// Fold one runtime's Runtime::stats() snapshot into the artifact's
  /// "runtime_stats" object.  Benches build a fresh Runtime per cell, so
  /// call this after every measured run; the totals accumulate across the
  /// whole sweep (see RuntimeStats::operator+= for the merge rules).
  void add_runtime_stats(const api::RuntimeStats& s) {
    runtime_stats_ += s;
    ++runtimes_merged_;
  }

  std::string json() const {
    std::ostringstream os;
    // Full round-trip precision: the artifact exists to detect sub-percent
    // perf drift, which 6-significant-digit default formatting would hide
    // on million-scale throughputs.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"bench\":\"" << runtime::json_escape(bench_)
       << "\",\"schema_version\":1,\"args\":{\"duration_ms\":" << args_.duration_ms
       << ",\"runs\":" << args_.runs << ",\"full\":" << (args_.full ? "true" : "false")
       << ",\"seed\":" << args_.seed;
    if (!backend_.empty())
      os << ",\"backend\":\"" << runtime::json_escape(backend_) << "\"";
    os << ",\"threads\":[";
    for (std::size_t i = 0; i < args_.threads.size(); ++i)
      os << (i ? "," : "") << args_.threads[i];
    os << "]},\"series\":[";
    for (std::size_t s = 0; s < series_.size(); ++s) {
      if (s) os << ",";
      os << "{\"name\":\"" << runtime::json_escape(series_[s].name)
         << "\",\"points\":[";
      for (std::size_t p = 0; p < series_[s].points.size(); ++p) {
        if (p) os << ",";
        os << "{";
        const auto& fields = series_[s].points[p];
        for (std::size_t f = 0; f < fields.size(); ++f) {
          if (f) os << ",";
          os << "\"" << runtime::json_escape(fields[f].first)
             << "\":" << fields[f].second;
        }
        os << "}";
      }
      os << "]}";
    }
    os << "]";
    // Every artifact carries the merged Runtime::stats() totals (CI asserts
    // the object is present and non-empty in all BENCH_*.json files) and
    // the build/run provenance stamp the history pipeline keys on.
    os << ",\"stamp\":" << build_stamp_json()
       << ",\"runtimes_merged\":" << runtimes_merged_
       << ",\"runtime_stats\":" << runtime_stats_.to_json() << "}";
    return os.str();
  }

  /// Write BENCH_<bench>[_<backend>].json (or the --json override).
  void write() const {
    std::string path = args_.json_path;
    if (path.empty()) {
      path = "BENCH_" + bench_;
      if (!backend_.empty()) path += "_" + backend_;
      path += ".json";
    }
    emit_bench_json(path, json());
  }

 private:
  struct Series {
    std::string name;
    std::vector<Fields> points;
  };
  std::string bench_;
  BenchArgs args_;
  std::string backend_;
  std::vector<Series> series_;
  api::RuntimeStats runtime_stats_;
  std::uint64_t runtimes_merged_ = 0;
};

}  // namespace shrinktm::bench

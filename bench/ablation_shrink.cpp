// Ablation study: which of Shrink's ingredients carries the win?
//
// Variants on the overloaded STMBench7 write-dominated workload (default
// --backend tiny with busy waiting, the paper's most scheduler-sensitive
// configuration):
//   full         -- Shrink as shipped
//   no-read-pred -- write-set prediction only
//   no-write-pred-- read-set prediction only
//   no-affinity  -- check prediction on every low-success start (no
//                   serialization-affinity coin)
//   base         -- no scheduler
#include <iostream>

#include "bench/common.hpp"
#include "workloads/driver.hpp"
#include "workloads/stmbench7.hpp"

using namespace shrinktm;
using namespace shrinktm::bench;
using namespace shrinktm::workloads;

namespace {

struct Variant {
  const char* name;
  bool read_pred, write_pred, affinity, enabled;
};

double run_variant(const BenchArgs& args, core::BackendKind backend,
                   util::WaitPolicy wait, const Variant& v, int threads,
                   BenchReporter& rep) {
  return mean_throughput(args, [&](int run) {
    core::ShrinkConfig cfg;
    cfg.use_read_prediction = v.read_pred;
    cfg.use_write_prediction = v.write_pred;
    cfg.use_affinity = v.affinity;
    api::Runtime rt(api::RuntimeOptions{}
                        .with_backend(backend)
                        .with_scheduler(v.enabled ? core::SchedulerKind::kShrink
                                                  : core::SchedulerKind::kNone)
                        .with_wait_policy(wait)
                        .with_shrink(cfg)
                        .with_seed(args.seed + static_cast<std::uint64_t>(run)));
    Sb7Config wcfg;
    wcfg.mix = Sb7Mix::kWriteDominated;
    StmBench7 w(wcfg);
    DriverConfig dcfg;
    dcfg.threads = threads;
    dcfg.duration_ms = args.duration_ms;
    dcfg.seed = args.seed + static_cast<std::uint64_t>(run);
    const double thr = run_workload(rt, w, dcfg).throughput;
    rep.add_runtime_stats(rt.stats());
    return thr;
  });
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv, {8, 16, 24}, {8, 16, 24, 32});
  if (args.runs == 1) args.runs = 3;  // this study needs variance damping
  const core::BackendKind backend = args.backend_or(core::BackendKind::kTiny);
  const util::WaitPolicy wait = args.wait_or_native(backend);

  const Variant variants[] = {
      {"base", false, false, false, false},
      {"full", true, true, true, true},
      {"no-read-pred", false, true, true, true},
      {"no-write-pred", true, false, true, true},
      {"no-affinity", true, true, false, true},
  };

  std::cout << "== Ablation: Shrink ingredients on STMBench7 write-dominated ("
            << core::backend_kind_name(backend) << " backend; committed tx/s) ==\n";
  BenchReporter rep("ablation_shrink", args, backend);
  std::vector<std::string> header{"threads"};
  for (const auto& v : variants) header.emplace_back(v.name);
  util::TextTable t(header);
  for (int threads : args.threads) {
    t.row().cell(threads);
    for (const auto& v : variants) {
      const double thr = run_variant(args, backend, wait, v, threads, rep);
      t.cell(thr, 0);
      rep.add(v.name, {{"threads", static_cast<double>(threads)},
                       {"throughput", thr}});
    }
  }
  t.print(std::cout);
  rep.write();
  return 0;
}

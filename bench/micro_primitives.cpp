// Primitive-cost microbenchmarks: the building blocks whose costs bound
// Shrink's overhead -- Bloom filter ops (standard vs cache-line-blocked),
// the prediction tracker's read path (legacy vs blocked+digest, the
// before/after of the hot-path overhaul), write-log lookup/append, orec
// oracle probes and raw STM read/write cycles.
//
// Self-contained harness (no google-benchmark dependency): each primitive
// runs in timed batches until a minimum measurement time elapses and the
// best batch (min ns/op) is reported, which is robust against scheduler
// noise on shared CI boxes.
//
// Flags:
//   --tiny            short batches (CI smoke)
//   --json PATH       artifact path (default BENCH_micro_primitives.json)
//   --baseline PATH   compare against a checked-in baseline and exit
//                     non-zero if the per-read predictor cost regressed
//                     >25% (normalized by the standard-bloom-query cost so
//                     the gate transfers across machines)
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "core/prediction.hpp"
#include "runtime/metrics_export.hpp"
#include "stm/runner.hpp"
#include "stm/swiss.hpp"
#include "stm/tiny.hpp"
#include "stm/tx_sets.hpp"
#include "txstruct/tvar.hpp"
#include "util/blocked_bloom.hpp"
#include "util/bloom.hpp"
#include "util/table.hpp"

namespace {

using namespace shrinktm;

inline void keep(std::uint64_t v) { asm volatile("" : : "r"(v) : "memory"); }
inline void keep_ptr(const void* p) { asm volatile("" : : "r"(p) : "memory"); }

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run `batch` (performing `ops_per_batch` operations) repeatedly for at
/// least `min_seconds`; return the best observed ns/op.
template <typename F>
double measure_ns(F&& batch, std::uint64_t ops_per_batch, double min_seconds) {
  batch();  // warmup: faults, allocations, branch history
  double best = 1e300;
  double total = 0.0;
  do {
    const double t0 = now_seconds();
    batch();
    const double dt = now_seconds() - t0;
    total += dt;
    const double per_op = dt / static_cast<double>(ops_per_batch);
    if (per_op < best) best = per_op;
  } while (total < min_seconds);
  return best * 1e9;
}

struct Result {
  std::string name;
  double ns_per_op;
};

// ---------------------------------------------------------------- primitives

double bench_bloom_std_insert(double min_s) {
  util::BloomFilter bf(12, 2);
  std::uint64_t k = 0;
  return measure_ns(
      [&] {
        for (int i = 0; i < 4096; ++i) {
          bf.insert(k += 977);
          if ((k & 0xfff) == 0) bf.clear();
        }
      },
      4096, min_s);
}

double bench_bloom_std_query(double min_s) {
  util::BloomFilter bf(12, 2);
  for (std::uint64_t i = 0; i < 200; ++i) bf.insert(i * 31);
  std::uint64_t k = 0;
  return measure_ns(
      [&] {
        std::uint64_t hits = 0;
        for (int i = 0; i < 4096; ++i) hits += bf.maybe_contains(k += 13);
        keep(hits);
      },
      4096, min_s);
}

double bench_bloom_blocked_insert(double min_s) {
  util::BlockedBloomFilter bf(12, 2);
  std::uint64_t k = 0;
  return measure_ns(
      [&] {
        for (int i = 0; i < 4096; ++i) {
          bf.insert(k += 977);
          if ((k & 0xfff) == 0) bf.clear();
        }
      },
      4096, min_s);
}

double bench_bloom_blocked_query(double min_s) {
  util::BlockedBloomFilter bf(12, 2);
  for (std::uint64_t i = 0; i < 200; ++i) bf.insert(i * 31);
  std::uint64_t k = 0;
  return measure_ns(
      [&] {
        std::uint64_t hits = 0;
        for (int i = 0; i < 4096; ++i) hits += bf.maybe_contains(k += 13);
        keep(hits);
      },
      4096, min_s);
}

/// Per-read predictor cost, active tracking, mostly-fresh address stream
/// (the common digest-miss path a long traversal produces).  `blocked`
/// selects the post-overhaul implementation; false measures the pre-PR
/// double-hash + full-window-walk path.
double bench_predictor_read(bool blocked, double min_s) {
  core::PredictionConfig cfg;
  cfg.use_blocked_bloom = blocked;
  core::PredictionTracker p(cfg);
  static std::uint64_t pool[1 << 16];
  std::uint64_t idx = 0;
  unsigned in_tx = 0;
  p.begin_tx(false);
  return measure_ns(
      [&] {
        for (int i = 0; i < 4096; ++i) {
          idx = (idx + 193) & ((1u << 16) - 1);
          p.on_read(&pool[idx]);
          if (++in_tx == 256) {
            p.note_commit();
            p.begin_tx(false);
            in_tx = 0;
          }
        }
      },
      4096, min_s);
}

/// Per-read predictor cost on a high-locality stream (75% of each
/// transaction's reads repeat the previous transaction's): the digest-hit
/// path, where the confidence walk still runs.
double bench_predictor_read_local(bool blocked, double min_s) {
  core::PredictionConfig cfg;
  cfg.use_blocked_bloom = blocked;
  core::PredictionTracker p(cfg);
  static std::uint64_t pool[4096];
  std::uint64_t base = 0;
  unsigned in_tx = 0;
  p.begin_tx(false);
  return measure_ns(
      [&] {
        for (int i = 0; i < 4096; ++i) {
          const std::uint64_t a = (base + in_tx) & 4095;
          p.on_read(&pool[a]);
          if (++in_tx == 256) {
            p.note_commit();
            p.begin_tx(false);
            in_tx = 0;
            base = (base + 64) & 4095;  // 75% overlap with the previous tx
          }
        }
      },
      4096, min_s);
}

double bench_writelog_miss_append(double min_s) {
  stm::WriteLog<stm::TinyBackend::Orec> log;
  static stm::Word pool[256];
  return measure_ns(
      [&] {
        for (int round = 0; round < 16; ++round) {
          for (auto& w : pool) {
            const auto l = log.find_or_slot(&w);
            if (l.entry == nullptr) log.append_at(l.slot, &w, 1, nullptr, 0);
          }
          log.clear();
        }
      },
      16 * 256, min_s);
}

double bench_writelog_hit(double min_s) {
  stm::WriteLog<stm::TinyBackend::Orec> log;
  static stm::Word pool[256];
  for (auto& w : pool) {
    const auto l = log.find_or_slot(&w);
    log.append_at(l.slot, &w, 1, nullptr, 0);
  }
  return measure_ns(
      [&] {
        std::uint64_t sum = 0;
        for (int round = 0; round < 16; ++round)
          for (auto& w : pool) sum += static_cast<std::uint64_t>(log.find(&w)->value);
        keep(sum);
      },
      16 * 256, min_s);
}

/// Transactional read/write cycles are measured through the public facade
/// (api::Runtime + api::Tx typed accessors): that IS the product hot path
/// since the unified-API redesign, so the numbers track what applications
/// pay.  The runtime stats of these runs land in the artifact's
/// runtime_stats object.
double bench_readonly_tx(core::BackendKind kind, double min_s,
                         api::RuntimeStats* acc) {
  api::Runtime rt(api::RuntimeOptions{}.with_backend(kind));
  api::ThreadHandle th = rt.attach();
  txs::TVar<std::int64_t> vars[16];
  const double ns = measure_ns(
      [&] {
        for (int i = 0; i < 256; ++i) {
          th.run([&](api::Tx& tx) {
            std::int64_t sum = 0;
            for (auto& v : vars) sum += tx.read(v);
            keep(static_cast<std::uint64_t>(sum));
          });
        }
      },
      256 * 16, min_s);  // per transactional READ
  if (acc != nullptr) *acc += rt.stats();
  return ns;
}

double bench_write_tx(core::BackendKind kind, double min_s,
                      api::RuntimeStats* acc) {
  api::Runtime rt(api::RuntimeOptions{}.with_backend(kind));
  api::ThreadHandle th = rt.attach();
  txs::TVar<std::int64_t> vars[8];
  std::int64_t i = 0;
  const double ns = measure_ns(
      [&] {
        for (int n = 0; n < 256; ++n) {
          ++i;
          th.run([&](api::Tx& tx) {
            for (auto& v : vars) tx.write(v, i);
          });
        }
      },
      256 * 8, min_s);  // per transactional WRITE
  if (acc != nullptr) *acc += rt.stats();
  return ns;
}

template <typename Backend>
double bench_oracle(double min_s) {
  Backend backend;
  txs::TVar<std::int64_t> v(1);
  return measure_ns(
      [&] {
        std::uint64_t hits = 0;
        for (int i = 0; i < 4096; ++i)
          hits += backend.is_write_locked_by_other(v.address(), 0);
        keep(hits);
      },
      4096, min_s);
}

// ------------------------------------------------------------------ baseline

/// Minimal flat-JSON number extraction ("key": <number>); good enough for
/// the baseline files this binary writes itself.
bool json_number(const std::string& text, const std::string& key, double* out) {
  const auto pos = text.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + key.size() + 3, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string json_path = "BENCH_micro_primitives.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--tiny") tiny = true;
    else if (a == "--json") json_path = next();
    else if (a == "--baseline") baseline_path = next();
    else if (a == "--help" || a == "-h") {
      std::cout << "flags: --tiny  --json PATH  --baseline PATH\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return 2;
    }
  }
  const double min_s = tiny ? 0.02 : 0.1;

  std::vector<Result> results;
  auto run = [&](const char* name, double ns) {
    results.push_back({name, ns});
    std::printf("%-32s %10.2f ns/op\n", name, ns);
    std::fflush(stdout);
  };

  run("bloom_std_insert", bench_bloom_std_insert(min_s));
  run("bloom_std_query", bench_bloom_std_query(min_s));
  run("bloom_blocked_insert", bench_bloom_blocked_insert(min_s));
  run("bloom_blocked_query", bench_bloom_blocked_query(min_s));
  run("predictor_read_active_legacy", bench_predictor_read(false, min_s));
  run("predictor_read_active", bench_predictor_read(true, min_s));
  run("predictor_read_local_legacy", bench_predictor_read_local(false, min_s));
  run("predictor_read_local", bench_predictor_read_local(true, min_s));
  run("writelog_miss_append", bench_writelog_miss_append(min_s));
  run("writelog_hit", bench_writelog_hit(min_s));
  api::RuntimeStats rt_stats;
  run("stm_read_tiny",
      bench_readonly_tx(core::BackendKind::kTiny, min_s, &rt_stats));
  run("stm_read_swiss",
      bench_readonly_tx(core::BackendKind::kSwiss, min_s, &rt_stats));
  run("stm_write_tiny",
      bench_write_tx(core::BackendKind::kTiny, min_s, &rt_stats));
  run("stm_write_swiss",
      bench_write_tx(core::BackendKind::kSwiss, min_s, &rt_stats));
  run("oracle_tiny", bench_oracle<stm::TinyBackend>(min_s));
  run("oracle_swiss", bench_oracle<stm::SwissBackend>(min_s));

  auto find = [&](const std::string& name) {
    for (const auto& r : results)
      if (r.name == name) return r.ns_per_op;
    return -1.0;
  };
  const double pred = find("predictor_read_active");
  const double pred_legacy = find("predictor_read_active_legacy");
  const double calib = find("bloom_std_query");
  const double speedup = pred > 0 ? pred_legacy / pred : 0.0;
  std::printf("\npredictor speedup (legacy / blocked+digest): %.2fx\n", speedup);

  // The acceptance metric and both of its inputs land in the artifact; the
  // summary keys are what --baseline reads back.
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"bench\":\"micro_primitives\",\"schema_version\":1,\"mode\":\""
     << (tiny ? "tiny" : "full") << "\",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i ? "," : "") << "{\"name\":\"" << results[i].name
       << "\",\"ns_per_op\":" << results[i].ns_per_op << "}";
  }
  os << "],\"summary\":{\"predictor_read_active_ns\":" << pred
     << ",\"predictor_read_active_legacy_ns\":" << pred_legacy
     << ",\"calibration_ns\":" << calib
     << ",\"predictor_speedup_legacy_over_blocked\":" << speedup
     << "},\"stamp\":" << shrinktm::bench::build_stamp_json()
     << ",\"runtime_stats\":" << rt_stats.to_json() << "}";
  if (runtime::write_json_file(json_path, os.str()))
    std::cout << "wrote " << json_path << "\n";
  else
    std::cerr << "WARNING: could not write " << json_path << "\n";

  if (!baseline_path.empty()) {
    std::ifstream f(baseline_path);
    if (!f) {
      std::cerr << "FAIL: cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();
    double base_pred = 0, base_calib = 0;
    if (!json_number(text, "predictor_read_active_ns", &base_pred) ||
        !json_number(text, "calibration_ns", &base_calib) || base_calib <= 0) {
      std::cerr << "FAIL: baseline missing predictor_read_active_ns / "
                   "calibration_ns\n";
      return 1;
    }
    // Normalize by the standard-bloom-query cost (code untouched by the
    // hot-path work) so the gate measures the predictor, not the machine.
    const double cur_norm = pred / calib;
    const double base_norm = base_pred / base_calib;
    std::printf("baseline gate: normalized predictor cost %.3f vs baseline "
                "%.3f (limit %.3f)\n",
                cur_norm, base_norm, base_norm * 1.25);
    if (cur_norm > base_norm * 1.25) {
      std::cerr << "FAIL: per-read predictor cost regressed >25% against "
                << baseline_path << "\n";
      return 1;
    }
    std::cout << "baseline gate passed\n";
  }
  return 0;
}

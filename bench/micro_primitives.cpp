// Primitive-cost microbenchmarks (google-benchmark): the building blocks
// whose costs bound Shrink's overhead -- Bloom filter ops, the prediction
// tracker's read path, orec hashing, raw STM read/write/commit cycles.
#include <benchmark/benchmark.h>

#include "core/prediction.hpp"
#include "stm/runner.hpp"
#include "stm/swiss.hpp"
#include "stm/tiny.hpp"
#include "txstruct/tvar.hpp"
#include "util/bloom.hpp"
#include "util/rng.hpp"

namespace {

using namespace shrinktm;

void BM_BloomInsert(benchmark::State& state) {
  util::BloomFilter bf(12, 3);
  std::uint64_t k = 0;
  for (auto _ : state) {
    bf.insert(k += 977);
    if ((k & 0xfff) == 0) bf.clear();
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  util::BloomFilter bf(12, 3);
  for (std::uint64_t i = 0; i < 200; ++i) bf.insert(i * 31);
  std::uint64_t k = 0;
  for (auto _ : state) benchmark::DoNotOptimize(bf.maybe_contains(k += 13));
}
BENCHMARK(BM_BloomQuery);

void BM_PredictionOnRead(benchmark::State& state) {
  core::PredictionTracker p;
  p.begin_tx(false);
  static int pool[4096];
  std::uint64_t i = 0;
  for (auto _ : state) {
    p.on_read(&pool[(i += 7) & 4095]);
    if ((i & 0x3ff) == 0) {
      p.note_commit();
      p.begin_tx(false);
    }
  }
}
BENCHMARK(BM_PredictionOnRead);

template <typename Backend>
void BM_ReadOnlyTx(benchmark::State& state) {
  Backend backend;
  txs::TVar<std::int64_t> vars[16];
  stm::TxRunner<typename Backend::Tx> r(backend.tx(0), nullptr);
  for (auto _ : state) {
    r.run([&](auto& tx) {
      std::int64_t acc = 0;
      for (auto& v : vars) acc += v.read(tx);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_ReadOnlyTx<stm::TinyBackend>)->Name("BM_ReadOnlyTx/tiny");
BENCHMARK(BM_ReadOnlyTx<stm::SwissBackend>)->Name("BM_ReadOnlyTx/swiss");

template <typename Backend>
void BM_WriteTx(benchmark::State& state) {
  Backend backend;
  txs::TVar<std::int64_t> vars[8];
  stm::TxRunner<typename Backend::Tx> r(backend.tx(0), nullptr);
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    r.run([&](auto& tx) {
      for (auto& v : vars) v.write(tx, i);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_WriteTx<stm::TinyBackend>)->Name("BM_WriteTx/tiny");
BENCHMARK(BM_WriteTx<stm::SwissBackend>)->Name("BM_WriteTx/swiss");

template <typename Backend>
void BM_WriteOracle(benchmark::State& state) {
  Backend backend;
  txs::TVar<std::int64_t> v(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.is_write_locked_by_other(v.address(), 0));
  }
}
BENCHMARK(BM_WriteOracle<stm::TinyBackend>)->Name("BM_WriteOracle/tiny");
BENCHMARK(BM_WriteOracle<stm::SwissBackend>)->Name("BM_WriteOracle/swiss");

}  // namespace

BENCHMARK_MAIN();

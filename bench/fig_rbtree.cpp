// Red-black-tree microbenchmark figures, one binary for both backends
// (collapses the old fig7_rbtree_swiss / fig11_rbtree_tiny forks):
//
//   --backend swiss     Figure 7: SwissTM-style -- quantifies Shrink's
//                       overhead at low thread counts and ATS's much larger
//                       overhead
//   --backend tiny      Figure 11 (appendix): TinySTM-style -- base
//                       throughput collapses past the core count,
//                       Shrink-TinySTM stays an order of magnitude higher
//
// Emits BENCH_fig_rbtree_<backend>.json with a "backend" field.
#include "bench/sweeps.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  const core::BackendKind backend = args.backend_or(core::BackendKind::kSwiss);
  const util::WaitPolicy wait = args.wait_or_native(backend);

  const bool swiss = backend == core::BackendKind::kSwiss;
  const char* label = swiss ? "Figure 7" : "Figure 11";
  const std::vector<core::SchedulerKind> kinds =
      swiss ? std::vector<core::SchedulerKind>{core::SchedulerKind::kNone,
                                               core::SchedulerKind::kShrink,
                                               core::SchedulerKind::kAts}
            : std::vector<core::SchedulerKind>{core::SchedulerKind::kNone,
                                               core::SchedulerKind::kShrink};

  BenchReporter rep("fig_rbtree", args, backend);
  rbtree_throughput_sweep(args, backend, wait, kinds, label, &rep);
  rep.write();
  return 0;
}

// Producer/consumer condition-synchronization bench for composable blocking
// (tx.retry / api::or_else) -- the workload class the figure benches could
// not express before the wakeup table landed: threads that must WAIT for
// data, not conflict over it.
//
//   --backend tiny|swiss|durable   pick the STM backend
//                          (emits BENCH_fig_retry_<backend>.json)
//   --threads a,b,c        total threads per cell, split half producers /
//                          half consumers (cells with < 2 threads are skipped)
//
// Producers push sequence numbers through a small TxBoundedQueue (blocking
// on full), consumers drain it (blocking on empty) and exit through an
// or_else shutdown alternative armed on the union of the queue cursors and
// the done flag.  Reported throughput is consumed items/s; the embedded
// runtime_stats carry the retry_* counters (waits, kernel sleeps, blocked
// nanoseconds, wakeups) so the artifact shows how much of the run was spent
// parked rather than spinning -- zero busy-wait commits while blocked.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/shrinktm.hpp"
#include "bench/common.hpp"
#include "txstruct/bounded_queue.hpp"
#include "util/table.hpp"

namespace {

using namespace shrinktm;

struct CellResult {
  double throughput = 0;       ///< consumed items per second
  double retry_waits = 0;      ///< parked attempts (both sides)
  double retry_sleeps = 0;     ///< waits that reached the kernel
  double retry_wait_ms = 0;    ///< total blocked wall-clock, milliseconds
};

CellResult run_cell(const bench::BenchArgs& args, core::BackendKind backend,
                    int threads, int run, bench::BenchReporter& rep) {
  const int producers = threads / 2;
  const int consumers = threads - producers;

  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(backend)
                      .with_seed(args.seed + static_cast<std::uint64_t>(run)));
  txs::TxBoundedQueue<std::int64_t, 64> q;
  api::TVar<std::int64_t> done{0};
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> consumed{0};

  std::vector<std::thread> prod, cons;
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < producers; ++p) {
    prod.emplace_back([&, p] {
      api::ThreadHandle th = rt.attach();
      std::int64_t seq = p;
      while (!stop.load(std::memory_order_relaxed)) {
        atomically(th, [&](api::Tx& tx) { q.push(tx, seq); });
        ++seq;
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    cons.emplace_back([&] {
      api::ThreadHandle th = rt.attach();
      for (;;) {
        // Blocking pop with a composable shutdown path: while the queue is
        // empty and done is unset, the consumer parks on the union of the
        // cursor words and the done flag -- either a push or the shutdown
        // commit wakes it.
        const auto v = atomically(th, api::or_else(
            [&](api::Tx& tx) { return q.pop(tx); },
            [&](api::Tx& tx) -> std::int64_t {
              if (tx.read(done) == 0) tx.retry();
              return -1;
            }));
        if (v < 0) break;
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(args.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : prod) t.join();
  {
    api::ThreadHandle th = rt.attach();
    atomically(th, [&](api::Tx& tx) { tx.write(done, 1); });
  }
  for (auto& t : cons) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const api::RuntimeStats s = rt.stats();
  rep.add_runtime_stats(s);
  CellResult r;
  r.throughput = static_cast<double>(consumed.load()) / secs;
  r.retry_waits = static_cast<double>(s.retry_waits);
  r.retry_sleeps = static_cast<double>(s.retry_sleeps);
  r.retry_wait_ms = static_cast<double>(s.retry_wait_ns) / 1e6;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args = parse_args(argc, argv, {2, 4, 8}, {2, 4, 8, 16, 24});
  const core::BackendKind backend = args.backend_or(core::BackendKind::kSwiss);

  BenchReporter rep("fig_retry", args, backend);
  std::cout << "fig_retry producer/consumer ("
            << core::backend_kind_name(backend) << "): consumed items/s\n";
  util::TextTable t({"threads", "items/s", "retry_waits", "blocked ms"});

  for (const int threads : args.threads) {
    if (threads < 2) continue;  // need at least one producer + one consumer
    util::OnlineStats thr;
    CellResult last;
    for (int run = 0; run < args.runs; ++run) {
      last = run_cell(args, backend, threads, run, rep);
      thr.add(last.throughput);
    }
    t.row();
    t.cell(threads);
    t.cell(thr.mean(), 0);
    t.cell(last.retry_waits, 0);
    t.cell(last.retry_wait_ms, 1);
    rep.add("prod-cons/blocking",
            {{"threads", static_cast<double>(threads)},
             {"throughput", thr.mean()},
             {"retry_waits", last.retry_waits},
             {"retry_sleeps", last.retry_sleeps},
             {"retry_wait_ms", last.retry_wait_ms}});
  }
  t.print(std::cout);
  rep.write();
  return 0;
}

// Figure 11 (appendix): red-black tree on the TinySTM-style backend --
// base throughput collapses past the core count; Shrink-TinySTM stays an
// order of magnitude higher.
#include "bench/sweeps.hpp"
#include "stm/tiny.hpp"

int main(int argc, char** argv) {
  using namespace shrinktm;
  using namespace shrinktm::bench;
  const BenchArgs args =
      parse_args(argc, argv, quick_thread_grid(), paper_thread_grid());
  BenchReporter rep("fig11_rbtree_tiny", args);
  rbtree_throughput_sweep<stm::TinyBackend>(
      args, util::WaitPolicy::kBusy,
      {core::SchedulerKind::kNone, core::SchedulerKind::kShrink},
      "Figure 11", &rep);
  rep.write();
  return 0;
}

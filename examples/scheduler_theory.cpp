// scheduler_theory: explore the paper's Section-2 competitive analysis
// interactively -- build conflict-graph instances and compare simulated
// schedulers, including how prediction inaccuracy degrades Restart.
//
//   $ ./examples/scheduler_theory [n]
#include <cstdio>
#include <cstdlib>

#include "sim/scenarios.hpp"
#include "sim/schedulers.hpp"

using namespace shrinktm::sim;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;

  std::printf("scheduler_theory with n = %d transactions\n\n", n);

  {
    const Instance inst = make_serializer_chain(n);
    std::printf("Figure 2(a) chain : Serializer %.0f vs OPT %.0f (Theorem 1: n vs 2)\n",
                simulate_serializer(inst).makespan,
                simulate_offline_opt(inst).makespan);
  }
  {
    constexpr int k = 4;
    const Instance inst = make_ats_star(n, k);
    std::printf("Figure 2(b) star  : ATS %.0f vs OPT %.0f (Theorem 1: k+n-1 vs k+1)\n",
                simulate_ats(inst, k).makespan,
                simulate_offline_opt(inst).makespan);
  }
  {
    const Instance inst = make_release_chain(n);
    std::printf("release chain     : Restart %.0f vs OPT %.0f (Theorem 2: ratio <= 2)\n",
                simulate_restart(inst).makespan,
                simulate_offline_opt(inst).makespan);
  }
  {
    const Instance inst = make_disjoint(n);
    std::printf("disjoint jobs     : Inaccurate %.0f vs OPT %.0f (Theorem 3: n vs 1)\n",
                simulate_inaccurate(inst, make_thm3_predicted(n)).makespan,
                simulate_offline_opt(inst).makespan);
  }

  std::printf("\nprediction-noise sweep on a random instance (n=%d):\n", n);
  const Instance inst = make_random(n, 0.1, 3, 0, 7);
  const double opt = simulate_offline_opt(inst).makespan;
  for (double q : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double m =
        simulate_inaccurate(inst, add_false_conflicts(inst.conflicts, q, 11))
            .makespan;
    std::printf("  false-conflict probability %.1f -> makespan %5.1f (%.2fx OPT)\n",
                q, m, m / opt);
  }
  return 0;
}

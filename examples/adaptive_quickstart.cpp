// Adaptive runtime through the api facade: the scheduler watches the
// workload and picks its own policy -- selecting it is one RuntimeOptions
// line, not a hand-built scheduler object.
//
//   $ ./examples/example_adaptive_quickstart
//
// Phase 1: threads transfer between thousands of accounts -- conflicts are
// rare, the runtime stays on the base policy (zero scheduling overhead).
// Phase 2: everyone hammers the same four accounts with long transactions --
// aborts spike, the runtime switches to Shrink.  Phase 3 widens the account
// range again and the runtime drops back to base.  The printed timeline is
// the regime classifier's view of the run.
#include <atomic>
#include <cstdio>
#include <thread>

#include "api/shrinktm.hpp"
#include "util/rng.hpp"

using namespace shrinktm;

int main() {
  runtime::AdaptiveConfig cfg;
  cfg.window_ms = 5.0;
  cfg.sampler_interval_ms = 2.5;
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kAdaptive)
                      .with_adaptive(cfg));  // no policy chosen by a human

  constexpr int kAccounts = 4096;
  constexpr std::int64_t kInitial = 1000;
  static api::TVar<std::int64_t> accounts[kAccounts];
  for (auto& a : accounts) a.unsafe_write(kInitial);

  std::atomic<std::uint64_t> span{kAccounts};  // phase knob: hot-set size
  std::atomic<bool> stop{false};

  auto worker = [&](int seed) {
    api::ThreadHandle th = rt.attach();
    util::Xoshiro256 rng(7000 + seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s = span.load(std::memory_order_relaxed);
      const bool hot = s < 64;
      const auto from = rng.next_below(s);
      auto to = rng.next_below(s);
      if (to == from) to = (to + 1) % s;
      const auto amount = static_cast<std::int64_t>(rng.next_below(5));
      atomically(th, [&](api::Tx& tx) {
        const auto bal = tx.read(accounts[from]);
        if (bal < amount) return;
        tx.write(accounts[from], bal - amount);
        if (hot) std::this_thread::yield();  // long tx: conflicts guaranteed
        tx.write(accounts[to], tx.read(accounts[to]) + amount);
      });
    }
  };

  std::thread t1(worker, 0), t2(worker, 1), t3(worker, 2), t4(worker, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  span.store(4, std::memory_order_relaxed);  // contention spike
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  span.store(kAccounts, std::memory_order_relaxed);  // drain
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  runtime::AdaptiveScheduler& sched = *rt.adaptive();
  sched.tick(true);

  std::int64_t total = 0;
  for (auto& a : accounts) total += a.unsafe_read();
  const auto stats = rt.aggregate_stats();
  std::printf("adaptive quickstart: %llu commits, %llu aborts, final regime "
              "%s -- total %s\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              runtime::regime_name(sched.regime()),
              total == kAccounts * kInitial ? "conserved" : "BROKEN");
  for (const auto& s : sched.switches())
    std::printf("  switch @%.3fs: %s -> %s (%s)\n", s.at_seconds,
                runtime::regime_name(s.from), runtime::regime_name(s.to),
                s.policy.c_str());

  // Stats epilogue: the same adaptive telemetry, through the structured
  // Runtime::stats() surface every facade user gets (and as JSON -- this is
  // the object each BENCH_*.json artifact embeds).
  const api::RuntimeStats rstats = rt.stats();
  std::printf("\nRuntime::stats(): %llu attempts = %llu commits + %llu aborts "
              "+ %llu cancels (%s)\n",
              static_cast<unsigned long long>(rstats.attempts),
              static_cast<unsigned long long>(rstats.commits),
              static_cast<unsigned long long>(rstats.aborts),
              static_cast<unsigned long long>(rstats.cancels),
              rstats.conserved() ? "conserved" : "NOT CONSERVED");
  std::printf("adaptive: regime %s, %llu windows closed, %llu switches; "
              "residency low=%llu moderate=%llu high=%llu pathological=%llu\n",
              rstats.adaptive.regime.c_str(),
              static_cast<unsigned long long>(rstats.adaptive.windows_closed),
              static_cast<unsigned long long>(rstats.adaptive.switches),
              static_cast<unsigned long long>(rstats.adaptive.residency_windows[0]),
              static_cast<unsigned long long>(rstats.adaptive.residency_windows[1]),
              static_cast<unsigned long long>(rstats.adaptive.residency_windows[2]),
              static_cast<unsigned long long>(rstats.adaptive.residency_windows[3]));
  std::printf("stats as JSON: %s\n", rstats.to_json().c_str());
  return total == kAccounts * kInitial ? 0 : 1;
}

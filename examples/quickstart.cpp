// Quickstart: transactional variables, a retry loop, and the Shrink
// scheduler in ~60 lines.
//
//   $ ./examples/quickstart
//
// Two threads transfer money between accounts; a third audits the constant
// total.  Everything shared lives in TVar<T>, all access goes through a
// transaction descriptor, and TxRunner::run re-executes the lambda on
// conflict.  Plugging in Shrink is one extra object.
#include <cstdio>
#include <thread>

#include "core/shrink.hpp"
#include "stm/runner.hpp"
#include "stm/swiss.hpp"
#include "txstruct/tvar.hpp"
#include "util/rng.hpp"

using namespace shrinktm;

int main() {
  stm::SwissBackend stm;                    // a SwissTM-style runtime
  core::ShrinkScheduler shrink(stm);        // the paper's scheduler

  constexpr int kAccounts = 64;
  constexpr std::int64_t kInitial = 1000;
  txs::TVar<std::int64_t> accounts[kAccounts];
  for (auto& a : accounts) a.unsafe_write(kInitial);

  auto worker = [&](int tid) {
    stm::TxRunner<stm::SwissTx> atomically(stm.tx(tid), &shrink);
    util::Xoshiro256 rng(1000 + tid);
    for (int i = 0; i < 50'000; ++i) {
      const auto from = rng.next_below(kAccounts);
      const auto to = rng.next_below(kAccounts);
      const auto amount = static_cast<std::int64_t>(rng.next_below(10));
      atomically.run([&](stm::SwissTx& tx) {
        const auto balance = accounts[from].read(tx);
        if (balance < amount) return;  // insufficient funds: commit a no-op
        accounts[from].write(tx, balance - amount);
        accounts[to].write(tx, accounts[to].read(tx) + amount);
      });
    }
  };

  auto auditor = [&](int tid) {
    stm::TxRunner<stm::SwissTx> atomically(stm.tx(tid), &shrink);
    for (int i = 0; i < 2'000; ++i) {
      const auto total = atomically.run([&](stm::SwissTx& tx) {
        std::int64_t sum = 0;
        for (auto& a : accounts) sum += a.read(tx);
        return sum;
      });
      if (total != kAccounts * kInitial) {
        std::printf("BROKEN INVARIANT: %lld\n", static_cast<long long>(total));
        return;
      }
    }
  };

  std::thread t1(worker, 0), t2(worker, 1), t3(auditor, 2);
  t1.join();
  t2.join();
  t3.join();

  const auto stats = stm.aggregate_stats();
  std::printf("quickstart: %llu commits, %llu aborts (%.1f%%), "
              "%llu serialized by shrink -- total conserved\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              100.0 * stats.abort_ratio(),
              static_cast<unsigned long long>(shrink.sched_stats().serialized()));
  return 0;
}

// Quickstart: the public shrinktm::api facade in ~90 lines.
//
//   $ ./examples/example_quickstart
//
// Two threads transfer money between accounts; a third audits the constant
// total.  The surface on display is API v2:
//   * typed shared state -- api::TVar<T> for word-sized values and
//     api::Shared<T> for any trivially-copyable struct (read/written
//     word-wise, never torn), accessed with tx.read()/tx.write();
//   * composability -- transfer() calls atomically() itself, so it works
//     standalone AND inside a bigger transaction (flat nesting joins the
//     live attempt); tx.on_commit() defers a side effect until the
//     transaction is durable, firing exactly once across retries;
//   * bounded retry -- RuntimeOptions.retry turns livelock into a
//     TxRetryExhausted exception instead of a hang (unbounded here);
//   * observability -- Runtime::stats() closes the run with a structured
//     snapshot (also available as JSON via to_json()).  Snapshot semantics:
//     stats() may be called at any time (racy-but-benign counter reads),
//     but the conservation identity attempts == commits + aborts + cancels
//     + retry_waits is exact only at quiescence -- so the epilogue below
//     runs after every ThreadHandle has been dropped (each worker's RAII
//     handle dies at its scope exit) and the threads are joined.
// The whole runtime -- backend (tiny|swiss), scheduler
// (none|shrink|ats|...|adaptive), waiting policy, seed -- stays one
// declarative RuntimeOptions; swapping any of them changes that line only.
#include <atomic>
#include <cstdio>
#include <thread>

#include "api/shrinktm.hpp"
#include "util/rng.hpp"

using namespace shrinktm;

namespace {

constexpr int kAccounts = 64;
constexpr std::int64_t kInitial = 1000;

/// A multi-word record in one transactional cell: Shared<T> keeps the pair
/// consistent -- no transaction can ever observe ops and volume torn.
struct LedgerInfo {
  std::int64_t ops = 0;
  std::int64_t volume = 0;
};

api::TVar<std::int64_t> accounts[kAccounts];
api::Shared<LedgerInfo> ledger;

/// Transactional helper: runs standalone or joins an enclosing transaction.
bool transfer(api::ThreadHandle& th, int from, int to, std::int64_t amount) {
  return atomically(th, [&](api::Tx& tx) {
    const auto balance = tx.read(accounts[from]);
    if (balance < amount) return false;  // insufficient funds: commit a no-op
    tx.write(accounts[from], balance - amount);
    tx.write(accounts[to], tx.read(accounts[to]) + amount);
    const LedgerInfo info = tx.read(ledger);
    tx.write(ledger, LedgerInfo{info.ops + 1, info.volume + amount});
    return true;
  });
}

}  // namespace

int main() {
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kShrink));
  for (auto& a : accounts) a.unsafe_write(kInitial);

  std::atomic<std::int64_t> confirmed{0};
  auto worker = [&](int seed) {
    api::ThreadHandle th = rt.attach();  // RAII tid, released at scope exit
    util::Xoshiro256 rng(1000 + seed);
    for (int i = 0; i < 25'000; ++i) {
      const auto from = static_cast<int>(rng.next_below(kAccounts));
      const auto to = static_cast<int>(rng.next_below(kAccounts));
      const auto amount = static_cast<std::int64_t>(rng.next_below(10));
      // A wrapping transaction composes the helper with a deferred action:
      // the confirmation counter moves only if the transfer really commits,
      // and exactly once no matter how many conflict-retries happen.
      atomically(th, [&](api::Tx& tx) {
        if (transfer(th, from, to, amount))  // flat-nested join
          tx.on_commit([&] { confirmed.fetch_add(1); });
      });
    }
  };

  auto auditor = [&] {
    api::ThreadHandle th = rt.attach();
    for (int i = 0; i < 2'000; ++i) {
      const auto total = atomically(th, [&](api::Tx& tx) {
        std::int64_t sum = 0;
        for (auto& a : accounts) sum += tx.read(a);
        return sum;
      });
      if (total != kAccounts * kInitial) {
        std::printf("BROKEN INVARIANT: %lld\n", static_cast<long long>(total));
        return;
      }
    }
  };

  std::thread t1(worker, 0), t2(worker, 1), t3(auditor);
  t1.join();
  t2.join();
  t3.join();

  // The observability epilogue: one structured snapshot for the whole run.
  // Every ThreadHandle was scoped to its worker and has been released by
  // the joins above -- the runtime is quiescent, so the conservation
  // identity the snapshot prints is exact, not approximate.  Taking the
  // snapshot while handles still run transactions is safe but may observe
  // an attempt whose outcome counter has not landed yet.
  const api::RuntimeStats stats = rt.stats();
  const LedgerInfo info = ledger.unsafe_read();
  std::printf("quickstart (%s/%s): %llu attempts = %llu commits + %llu aborts "
              "+ %llu cancels (%s), %.1f%% abort ratio, %llu serialized\n",
              stats.backend.c_str(), stats.scheduler.c_str(),
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              static_cast<unsigned long long>(stats.cancels),
              stats.conserved() ? "conserved" : "NOT CONSERVED",
              100.0 * stats.abort_ratio(),
              static_cast<unsigned long long>(stats.serialized));
  std::printf("ledger: %lld transfers moved %lld units; %lld confirmations "
              "-- total conserved\n",
              static_cast<long long>(info.ops),
              static_cast<long long>(info.volume),
              static_cast<long long>(confirmed.load()));
  if (info.ops != confirmed.load()) {
    std::printf("BROKEN: confirmations diverge from committed transfers\n");
    return 1;
  }
  return 0;
}

// Quickstart: the public shrinktm::api facade in ~60 lines.
//
//   $ ./examples/example_quickstart
//
// Two threads transfer money between accounts; a third audits the constant
// total.  Everything shared lives in TVar<T>; all access happens inside
// atomically(handle, body), whose body receives a backend-agnostic api::Tx&
// and is re-executed on conflict.  The whole runtime -- which STM backend
// (tiny|swiss), which scheduler (none|shrink|ats|...|adaptive), waiting
// policy, seed -- is one declarative RuntimeOptions; swapping any of them
// changes this line only, not the transaction code below.
#include <cstdio>
#include <thread>

#include "api/shrinktm.hpp"
#include "txstruct/tvar.hpp"
#include "util/rng.hpp"

using namespace shrinktm;

int main() {
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kShrink));

  constexpr int kAccounts = 64;
  constexpr std::int64_t kInitial = 1000;
  txs::TVar<std::int64_t> accounts[kAccounts];
  for (auto& a : accounts) a.unsafe_write(kInitial);

  auto worker = [&](int seed) {
    api::ThreadHandle th = rt.attach();  // RAII tid, released at scope exit
    util::Xoshiro256 rng(1000 + seed);
    for (int i = 0; i < 50'000; ++i) {
      const auto from = rng.next_below(kAccounts);
      const auto to = rng.next_below(kAccounts);
      const auto amount = static_cast<std::int64_t>(rng.next_below(10));
      atomically(th, [&](api::Tx& tx) {
        const auto balance = accounts[from].read(tx);
        if (balance < amount) return;  // insufficient funds: commit a no-op
        accounts[from].write(tx, balance - amount);
        accounts[to].write(tx, accounts[to].read(tx) + amount);
      });
    }
  };

  auto auditor = [&] {
    api::ThreadHandle th = rt.attach();
    for (int i = 0; i < 2'000; ++i) {
      const auto total = atomically(th, [&](api::Tx& tx) {
        std::int64_t sum = 0;
        for (auto& a : accounts) sum += a.read(tx);
        return sum;
      });
      if (total != kAccounts * kInitial) {
        std::printf("BROKEN INVARIANT: %lld\n", static_cast<long long>(total));
        return;
      }
    }
  };

  std::thread t1(worker, 0), t2(worker, 1), t3(auditor);
  t1.join();
  t2.join();
  t3.join();

  const auto stats = rt.aggregate_stats();
  const auto* sched = rt.scheduler();  // nullptr when scheduler == kNone
  std::printf("quickstart (%s/%s): %llu commits, %llu aborts (%.1f%%), "
              "%llu serialized by the scheduler -- total conserved\n",
              rt.backend_name(), rt.scheduler_name(),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts),
              100.0 * stats.abort_ratio(),
              static_cast<unsigned long long>(
                  sched != nullptr ? sched->sched_stats().serialized() : 0));
  return 0;
}

// cad_database: drive the STMBench7-mini CAD object graph directly through
// the public API -- build a module, run queries and structural edits from
// several threads, then compare schedulers on the write-dominated mix.
//
//   $ ./examples/cad_database [threads]
//
// This is the workload behind Figures 5/8/9; the example shows how a real
// application would use the library: transactional containers (red-black
// tree indices) plus application objects whose fields are TVars.
#include <cstdio>
#include <cstdlib>

#include "core/factory.hpp"
#include "stm/swiss.hpp"
#include "workloads/driver.hpp"
#include "workloads/stmbench7.hpp"

using namespace shrinktm;
using namespace shrinktm::workloads;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 12;

  std::printf("cad_database: STMBench7-mini object graph, %d threads\n\n", threads);

  for (auto mix : {Sb7Mix::kReadDominated, Sb7Mix::kWriteDominated}) {
    std::printf("-- %s workload --\n", sb7_mix_name(mix));
    for (auto kind : {core::SchedulerKind::kNone, core::SchedulerKind::kShrink}) {
      stm::SwissBackend backend;
      auto sched = core::make_scheduler(kind, backend);
      Sb7Config cfg;
      cfg.mix = mix;
      StmBench7 bench(cfg);
      DriverConfig dcfg;
      dcfg.threads = threads;
      dcfg.duration_ms = 300;
      const RunResult res = run_workload(backend, sched.get(), bench, dcfg);
      std::printf("  %-8s  %8.0f tx/s  aborts %5.1f%%  parts alive %zu  %s\n",
                  core::scheduler_kind_name(kind), res.throughput,
                  100.0 * res.stm.abort_ratio(), bench.live_parts(),
                  res.verified ? "invariants OK" : "INVARIANTS BROKEN");
    }
  }
  return 0;
}

// cad_database: drive the STMBench7-mini CAD object graph through the
// public api facade -- build a module, run queries and structural edits from
// several threads, then compare schedulers on both backends.
//
//   $ ./examples/example_cad_database [threads] [backend]
//
// This is the workload behind Figures 5/8/9; the example shows how a real
// application would use the library: transactional containers (red-black
// tree indices) plus application objects whose fields are TVars, with the
// backend and scheduler chosen by name at runtime.
#include <cstdio>
#include <cstdlib>

#include "api/shrinktm.hpp"
#include "workloads/driver.hpp"
#include "workloads/stmbench7.hpp"

using namespace shrinktm;
using namespace shrinktm::workloads;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 12;
  const core::BackendKind backend =
      argc > 2 ? core::parse_backend_kind(argv[2]) : core::BackendKind::kSwiss;

  std::printf("cad_database: STMBench7-mini object graph, %d threads, %s backend\n\n",
              threads, core::backend_kind_name(backend));

  for (auto mix : {Sb7Mix::kReadDominated, Sb7Mix::kWriteDominated}) {
    std::printf("-- %s workload --\n", sb7_mix_name(mix));
    for (auto kind : {core::SchedulerKind::kNone, core::SchedulerKind::kShrink}) {
      api::Runtime rt(
          api::RuntimeOptions{}.with_backend(backend).with_scheduler(kind));
      Sb7Config cfg;
      cfg.mix = mix;
      StmBench7 bench(cfg);
      DriverConfig dcfg;
      dcfg.threads = threads;
      dcfg.duration_ms = 300;
      const RunResult res = run_workload(rt, bench, dcfg);
      std::printf("  %-8s  %8.0f tx/s  aborts %5.1f%%  parts alive %zu  %s\n",
                  core::scheduler_kind_name(kind), res.throughput,
                  100.0 * res.stm.abort_ratio(), bench.live_parts(),
                  res.verified ? "invariants OK" : "INVARIANTS BROKEN");
    }
  }
  return 0;
}

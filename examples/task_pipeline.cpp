// task_pipeline: an intruder-style producer/consumer pipeline on a shared
// transactional queue, comparing the base STM with Shrink under overload.
//
// The shared queue is the paper's canonical scheduler-friendly hot spot
// ("a high number of transactions dequeue elements from a single queue" --
// §4.1 on intruder).  Run it and watch the abort ratio drop under Shrink
// while throughput holds or improves.  Schedulers are swapped through the
// api facade: one RuntimeOptions change per configuration.
//
//   $ ./examples/example_task_pipeline [threads] [duration-ms] [backend]
#include <cstdio>
#include <cstdlib>

#include "api/shrinktm.hpp"
#include "workloads/driver.hpp"
#include "workloads/stamp/intruder.hpp"

using namespace shrinktm;
using namespace shrinktm::workloads;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 16;
  const int duration_ms = argc > 2 ? std::atoi(argv[2]) : 300;
  const core::BackendKind backend =
      argc > 3 ? core::parse_backend_kind(argv[3]) : core::BackendKind::kTiny;

  std::printf("task_pipeline: %d threads, %d ms per configuration, %s backend\n\n",
              threads, duration_ms, core::backend_kind_name(backend));
  std::printf("%-10s %12s %10s %12s\n", "scheduler", "pkts/sec", "aborts%",
              "serialized");

  for (auto kind : {core::SchedulerKind::kNone, core::SchedulerKind::kShrink,
                    core::SchedulerKind::kAts}) {
    api::Runtime rt(
        api::RuntimeOptions{}.with_backend(backend).with_scheduler(kind));
    stamp::Intruder pipeline;
    DriverConfig cfg;
    cfg.threads = threads;
    cfg.duration_ms = duration_ms;
    const RunResult res = run_workload(rt, pipeline, cfg);
    std::printf("%-10s %12.0f %9.1f%% %12llu\n",
                core::scheduler_kind_name(kind), res.throughput,
                100.0 * res.stm.abort_ratio(),
                static_cast<unsigned long long>(res.serialized));
    if (!res.verified) {
      std::printf("pipeline invariants FAILED\n");
      return 1;
    }
  }
  std::printf("\nall pipeline invariants held (fragment conservation)\n");
  return 0;
}

// Compiled mirror of every code snippet in README.md and docs/API.md.
//
// The docs CI job builds and runs this target, so a snippet that bit-rots
// fails the build instead of lying to readers.  Each snippet_* function is
// kept textually in sync with the named document section; if you edit one,
// edit the other.
//
// assert() must stay live here even in the NDEBUG release build CI runs --
// the snippets' invariants ARE the test.
#undef NDEBUG
#include <cassert>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>

#include "api/shrinktm.hpp"
#include "replica/ship_server.hpp"
#include "service/service.hpp"
#include "txstruct/bounded_queue.hpp"

using namespace shrinktm;

// --------------------------------------------------- README.md "Quickstart"
namespace readme_quickstart {

api::TVar<long> balance;                 // word-sized typed cell
txs::TxBoundedQueue<long, 64> audit_log; // blocking bounded MPMC queue

void run() {
  // One declarative recipe: backend, scheduler, waiting policy, retry bound.
  api::Runtime rt(api::RuntimeOptions{}
                      .with_backend(core::BackendKind::kSwiss)
                      .with_scheduler(core::SchedulerKind::kShrink));

  std::thread worker([&] {
    api::ThreadHandle th = rt.attach();  // RAII thread slot
    atomically(th, [&](api::Tx& tx) {
      tx.write(balance, tx.read(balance) + 50);
      audit_log.push(tx, 50);            // blocks (tx.retry) while full
      tx.on_commit([] { std::puts("deposit durable"); });
    });
  });

  api::ThreadHandle th = rt.attach();
  // Blocking pop with a fallback, composed from alternatives: if the log is
  // empty, the first alternative retries and the transaction parks until
  // the worker's commit overwrites something it read.
  const long entry = atomically(th, api::or_else(
      [&](api::Tx& tx) { return audit_log.pop(tx); },
      [&](api::Tx& tx) -> long {
        if (tx.read(balance) == 0) tx.retry();  // nothing anywhere: wait
        return -1;
      }));

  worker.join();
  assert(entry == 50 || entry == -1);
  assert(rt.stats().conserved());
}

}  // namespace readme_quickstart

// ------------------------------------------- docs/API.md "Typed variables"
namespace api_typed {

struct Order {
  long id;
  long quantity;
};

void run() {
  api::Runtime rt;
  api::Shared<Order> order(Order{1, 10});  // multi-word, never torn
  api::SharedArray<long, 8> bins;

  api::ThreadHandle th = rt.attach();
  const long q = atomically(th, [&](api::Tx& tx) {
    const Order o = tx.read(order);
    tx.write(bins[o.id % 8], tx.read(bins[o.id % 8]) + o.quantity);
    return o.quantity;
  });
  assert(q == 10);
}

}  // namespace api_typed

// ------------------------------------ docs/API.md "Flat nesting" composing
namespace api_nesting {

api::TVar<long> from{100}, to{0};

/// Works standalone AND inside a larger transaction (flat nesting).
bool transfer(api::ThreadHandle& th, long amount) {
  return atomically(th, [&](api::Tx& tx) {
    if (tx.read(from) < amount) return false;
    tx.write(from, tx.read(from) - amount);
    tx.write(to, tx.read(to) + amount);
    return true;
  });
}

void run() {
  api::Runtime rt;
  api::ThreadHandle th = rt.attach();
  atomically(th, [&](api::Tx& tx) {
    if (transfer(th, 30))  // joins this attempt; commits or aborts with it
      tx.on_commit([] { std::puts("transfer confirmed"); });
  });
  assert(from.unsafe_read() == 70 && to.unsafe_read() == 30);
}

}  // namespace api_nesting

// ------------------- docs/API.md "Bounded retry vs blocking retry" section
namespace api_retry_kinds {

void run() {
  // BOUNDED retry: a conflict-livelock escape hatch.  max_attempts caps the
  // conflict-retry loop; exhaustion surfaces as TxRetryExhausted.
  api::Runtime rt(api::RuntimeOptions{}.with_max_attempts(64));
  api::TVar<long> cell{0};
  api::ThreadHandle th = rt.attach();

  try {
    atomically(th, [&](api::Tx& tx) { tx.write(cell, 1); });
  } catch (const api::TxRetryExhausted& e) {
    std::printf("livelocked after %llu attempts\n",
                static_cast<unsigned long long>(e.attempts()));
  }

  // BLOCKING retry: condition synchronization.  tx.retry() parks the
  // transaction until a commit overwrites its read set -- it never counts
  // against max_attempts, and burns zero commits while parked.
  std::thread producer([&] {
    api::ThreadHandle pth = rt.attach();
    atomically(pth, [&](api::Tx& tx) { tx.write(cell, 7); });
  });
  const long v = atomically(th, [&](api::Tx& tx) {
    const long c = tx.read(cell);
    if (c < 7) tx.retry();
    return c;
  });
  producer.join();
  assert(v == 7);
}

}  // namespace api_retry_kinds

// ------------------- docs/API.md "Timed blocking: tx.retry_for()" section
namespace api_retry_for {

void run() {
  api::Runtime rt;
  api::ThreadHandle th = rt.attach();

  api::TVar<long> inbox{0};
  const bool got = atomically(th, [&](api::Tx& tx) {
    if (tx.read(inbox) == 0) {
      if (tx.timed_out()) return false;            // waited long enough
      tx.retry_for(std::chrono::milliseconds(50)); // park, bounded
    }
    return true;
  });

  // Nobody publishes to inbox, so the park must expire and give up.
  assert(!got);
  assert(rt.stats().retry_timeouts == 1);
  assert(rt.stats().conserved());
}

}  // namespace api_retry_for

// ------------- docs/API.md "Observability: Runtime::stats()" latency digest
namespace api_stats_latency {

void run() {
  api::Runtime rt;
  api::ThreadHandle th = rt.attach();
  api::TVar<long> cell{0};
  for (int i = 0; i < 100; ++i)
    atomically(th, [&](api::Tx& tx) { tx.write(cell, tx.read(cell) + 1); });

  const api::RuntimeStats s = rt.stats();
  std::printf("commit p99: %llu ns (of %llu commits)\n",
              static_cast<unsigned long long>(
                  s.latency.commit.value_at_quantile(0.99)),
              static_cast<unsigned long long>(s.latency.commit.total()));
  assert(s.latency.commit.total() == 100);
}

}  // namespace api_stats_latency

// ----------------------------- docs/OBSERVABILITY.md "Tracing" quickstart
namespace obs_tracing {

void run() {
  api::Runtime rt(api::RuntimeOptions{}
                      .with_scheduler(core::SchedulerKind::kShrink)
                      .with_trace()                  // record lifecycle events
                      .with_trace_capacity(1 << 16)); // events per thread (default)

  api::TVar<long> cell{0};
  std::thread worker([&] {
    api::ThreadHandle th = rt.attach();
    for (int i = 0; i < 10; ++i)
      atomically(th, [&](api::Tx& tx) { tx.write(cell, tx.read(cell) + 1); });
  });
  worker.join();

  const bool ok = rt.dump_trace("trace.json");  // or: rt.trace_json()
  assert(ok);
  assert(rt.trace_json().find("\"traceEvents\"") != std::string::npos);
  std::remove("trace.json");
}

}  // namespace obs_tracing

// --------------------------- docs/API.md + docs/DURABILITY.md "Durability"
namespace api_durability {

void run() {
  // The docs use a fixed application path ("ledger/"); the compiled mirror
  // uses a scratch directory so repeated CI runs start cold.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinktm-docs-ledger";
  std::filesystem::remove_all(dir);

  {
    api::Runtime rt(api::RuntimeOptions{}.with_log_dir(dir.string()));
    auto balance = rt.durable_region()->slot<long>(0);  // stable offset 0

    api::ThreadHandle th = rt.attach();
    atomically(th, [&](api::Tx& tx) {
      tx.write(balance, tx.read(balance) + 50);
      // Fires only after the fsync covering this commit: when this runs,
      // the deposit has survived any crash.
      tx.on_commit([] { std::puts("deposit durable"); });
    });

    rt.snapshot();  // compact: one heap image replaces the whole log
  }
  {
    api::Runtime rt(api::RuntimeOptions{}.with_log_dir(dir.string()));
    assert(rt.recovery_info()->snapshot_loaded);
    assert(rt.durable_region()->slot<long>(0).unsafe_read() == 50);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace api_durability

// ------------------------------- docs/REPLICATION.md "Quickstart" section
namespace replication_quickstart {

void run() {
  // The docs use a fixed application path ("ledger/"); the compiled mirror
  // uses a scratch directory so repeated CI runs start cold.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinktm-docs-replica";
  std::filesystem::remove_all(dir);

  {
    // Leader: any durable runtime (docs/DURABILITY.md).
    api::Runtime leader(api::RuntimeOptions{}.with_log_dir(dir.string()));
    auto balance = leader.durable_region()->slot<long>(0);

    api::ThreadHandle th = leader.attach();
    atomically(th, [&](api::Tx& tx) { tx.write(balance, 50); });  // acked

    // Follower: opens the SAME directory strictly read-only.
    api::ReplicaRuntime follower(dir.string());
    const bool caught_up =
        follower.wait_until(leader.commit_ts(), std::chrono::seconds(10));
    assert(caught_up);

    const long seen = follower.run([&](api::Tx& tx) {
      return tx.read(follower.region().slot<long>(0));
    });
    assert(seen == 50);

    // Writes through a follower transaction are refused, not ignored.
    bool threw = false;
    try {
      follower.run([&](api::Tx& tx) {
        auto fslot = follower.region().slot<long>(0);
        tx.write(fslot, 1);
      });
    } catch (const api::TxReadOnlyError&) {
      threw = true;
    }
    assert(threw);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace replication_quickstart

// --------- docs/REPLICATION.md "Shipping the changelog over TCP" section
namespace replication_tcp {

void run() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "shrinktm-docs-ship";
  std::filesystem::remove_all(dir);

  {
    // Leader: a durable runtime plus a ShipServer over its directory.
    api::Runtime leader(api::RuntimeOptions{}.with_log_dir(dir.string()));
    replica::ShipServer ship({.dir = dir.string()});  // ephemeral port

    auto balance = leader.durable_region()->slot<long>(0);
    api::ThreadHandle th = leader.attach();
    atomically(th, [&](api::Tx& tx) { tx.write(balance, 50); });  // acked

    // Follower: no filesystem access at all -- everything (snapshot
    // bootstrap, changelog tail, lag pacing) travels the ship protocol.
    api::ReplicaOptions ro;
    ro.endpoint = ship.endpoint();  // "127.0.0.1:<port>"; or "@/path/file"
    api::ReplicaRuntime follower(ro);
    const bool caught_up =
        follower.wait_until(leader.commit_ts(), std::chrono::seconds(10));
    assert(caught_up);

    const long seen = follower.run([&](api::Tx& tx) {
      return tx.read(follower.region().slot<long>(0));
    });
    assert(seen == 50);
    assert(follower.stats().transport == "tcp");

    // Promotion: fence the leader (over the wire), drain the tail,
    // rehydrate a read-write runtime in a fresh directory.  The deposed
    // leader's next durable write fail-stops -- no split brain.
    const std::filesystem::path promoted_dir =
        std::filesystem::temp_directory_path() / "shrinktm-docs-promoted";
    std::filesystem::remove_all(promoted_dir);
    auto new_leader = follower.promote({.dir = promoted_dir.string()});
    const long carried = new_leader->run([&](api::Tx& tx) {
      return tx.read(new_leader->durable_region()->slot<long>(0));
    });
    assert(carried == 50);

    bool fenced = false;
    try {
      atomically(th, [&](api::Tx& tx) { tx.write(balance, 99); });
    } catch (const api::TxDurabilityError&) {
      fenced = true;
    }
    assert(fenced);
    std::filesystem::remove_all(promoted_dir);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace replication_tcp

// --------------------------------- docs/SERVICE.md "Quickstart" section
namespace service_quickstart {

void run() {
  api::Runtime rt(api::RuntimeOptions{}
                      .with_scheduler(core::SchedulerKind::kAdaptive));
  service::Ledger ledger(1 << 12, 1000);  // 4096 accounts, 1000 each

  service::ServiceSpec spec;
  spec.accounts = 1 << 12;
  spec.clients = 2;
  spec.scan_len = 64;
  service::PhaseSpec phase;
  phase.name = "warm";
  phase.duration_ms = 20;
  // Arrivals/second per client, indexed by OpClass:
  // {point_read, transfer, batch, scan, consume}
  phase.rate_hz = {2000, 500, 100, 50, 100};
  spec.phases = {phase};

  const service::ServiceReport rep = service::run_service(rt, ledger, spec);
  const obs::TaggedLatency& reads =
      rep.phases[0][static_cast<std::size_t>(service::OpClass::kPointRead)];
  std::printf("point reads: %llu done, p99 sojourn %llu ns\n",
              static_cast<unsigned long long>(reads.completed),
              static_cast<unsigned long long>(
                  reads.sojourn.value_at_quantile(0.99)));
  assert(rep.balance_conserved() && rt.stats().conserved());
}

}  // namespace service_quickstart

int main() {
  readme_quickstart::run();
  api_typed::run();
  api_nesting::run();
  api_retry_kinds::run();
  api_retry_for::run();
  api_stats_latency::run();
  obs_tracing::run();
  api_durability::run();
  replication_quickstart::run();
  replication_tcp::run();
  service_quickstart::run();
  std::puts("docs snippets OK");
  return 0;
}
